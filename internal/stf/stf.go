// Package stf is a sequential-task-flow execution engine, a from-scratch
// reproduction of the role CUDASTF plays in the paper (§3.3.1): users
// declare tasks together with the logical data each task touches and an
// access mode; the engine infers the dependency DAG, schedules tasks
// asynchronously onto execution places, and performs host/device memory
// movement automatically with an MSI-style coherence protocol.
//
// The programming model mirrors CUDASTF:
//
//	ctx := stf.NewCtx(platform)
//	quant := stf.NewData(ctx, "quant", codes)
//	out := stf.NewScratch[float32](ctx, "out", n)
//	ctx.Task("decode").Reads(quant.D()).Writes(out.D()).On(device.Host).
//	    Do(func(ti *stf.TaskInstance) error {
//	        ... quant.Acc(ti) ... out.Acc(ti) ...
//	        return nil
//	    })
//	err := ctx.Finalize()
//	... read results ...
//	ctx.Release()
//
// Tasks whose data sets do not conflict run concurrently — this is what
// gives FZMod-Default's decompression its branch-level concurrency
// (outlier scatter on the accelerator ∥ Huffman decode on the host).
// Ready tasks execute on per-place work-stealing worker pools (see
// sched.go): each worker owns a bounded deque plus a private scratch-pool
// shard, and idle workers steal, so skewed chunk sub-graphs rebalance
// instead of convoying behind the slowest worker.
//
// Scratch data and device-side copies are drawn from the platform's
// size-classed buffer pool (device.BufPool) and returned by Ctx.Release,
// so steady-state graph execution performs near-zero scratch allocation;
// Data.Detach transfers a scratch slab's ownership out of the pool when a
// result must outlive the context.
package stf

import (
	"errors"
	"fmt"
	"sync"

	"fzmod/internal/device"
)

// AccessMode declares how a task uses a piece of logical data.
type AccessMode int

const (
	// Read: the task only reads the data.
	Read AccessMode = iota
	// Write: the task fully overwrites the data; prior contents need not
	// be transferred to the task's place.
	Write
	// ReadWrite: the task reads and modifies the data.
	ReadWrite
)

// String returns "read", "write" or "rw".
func (m AccessMode) String() string {
	switch m {
	case Read:
		return "read"
	case Write:
		return "write"
	case ReadWrite:
		return "rw"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Element is the set of element types logical data may hold.
type Element interface {
	~byte | ~uint16 | ~uint32 | ~int32 | ~float32 | ~float64
}

// dataMeta is the type-erased dependency-tracking state of one logical
// datum. The scheduler only ever touches dataMeta; typed storage lives in
// Data[T].
type dataMeta struct {
	id   int
	name string

	// Dependency frontier, maintained at task-declaration time (the
	// "sequential" in sequential task flow): the last task that wrote the
	// datum, and all readers admitted since that write.
	lastWriter *task
	readers    []*task
}

// Data is a typed logical datum managed by a Ctx. The host slice passed at
// creation (or drawn from the platform pool for scratch data) is the home
// location; a separate device-place copy is materialized on demand.
// Validity of each copy is tracked so transfers happen only when a task
// actually needs stale data.
type Data[T Element] struct {
	ctx  *Ctx
	meta dataMeta

	mu        sync.Mutex
	host      []T
	dev       []T
	hostValid bool
	devValid  bool
	hostPut   func() // returns the pooled host slab; nil when caller-owned
	devPut    func() // returns the pooled device copy
	detached  bool   // host ownership transferred out via Detach
}

// DataRef is the type-erased handle used when declaring task accesses.
type DataRef interface {
	metaRef() *dataMeta
	ensureAt(place device.Place, mode AccessMode)
	writeBackLocked()
}

// NewData registers host as logical data with the context. The slice is
// initially valid at the host place and remains caller-owned.
func NewData[T Element](ctx *Ctx, name string, host []T) *Data[T] {
	d := &Data[T]{ctx: ctx, host: host, hostValid: true}
	ctx.register(&d.meta, name)
	ctx.addCleanup(d.release)
	return d
}

// NewScratch registers a zero-initialized logical datum of n elements whose
// storage is drawn from the platform's buffer pool; Ctx.Release returns it
// unless Detach has transferred ownership.
func NewScratch[T Element](ctx *Ctx, name string, n int) *Data[T] {
	host, put := poolSlice[T](ctx.p.ScratchPool(), n)
	d := &Data[T]{ctx: ctx, host: host, hostPut: put}
	ctx.register(&d.meta, name)
	ctx.addCleanup(d.release)
	return d
}

// NewToken registers a zero-length logical datum used purely to carry a
// dependency between tasks whose real payloads travel outside the engine
// (dynamically sized module outputs captured in plan structs — the pattern
// CUDASTF handles with oversized logical buffers).
func NewToken(ctx *Ctx, name string) *Data[byte] {
	d := &Data[byte]{ctx: ctx, hostValid: true}
	ctx.register(&d.meta, name)
	return d
}

// release returns pooled storage; registered with the Ctx at creation.
func (d *Data[T]) release() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.hostPut != nil && !d.detached {
		d.hostPut()
	}
	d.hostPut = nil
	d.host = nil
	if d.devPut != nil {
		d.devPut()
	}
	d.devPut = nil
	d.dev = nil
}

// D returns the type-erased reference used in task declarations.
func (d *Data[T]) D() DataRef { return d }

func (d *Data[T]) metaRef() *dataMeta { return &d.meta }

// Len returns the element count.
func (d *Data[T]) Len() int { return len(d.host) }

// Name returns the debug name given at creation.
func (d *Data[T]) Name() string { return d.meta.name }

// Acc resolves the datum for use inside a task body, returning the slice
// valid at the task's execution place. It panics if the task did not
// declare access to this datum — the same misuse CUDASTF rejects.
func (d *Data[T]) Acc(ti *TaskInstance) []T {
	if _, ok := ti.access[&d.meta]; !ok {
		panic(fmt.Sprintf("stf: task %q accesses undeclared data %q", ti.name, d.meta.name))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if ti.place == device.Accel {
		return d.dev
	}
	return d.host
}

// ensureAt implements the coherence protocol: make a copy of the datum
// valid at place for the given access mode, transferring from the other
// place when the local copy is stale, and invalidating the remote copy on
// writes. Byte traffic is charged to the platform so end-to-end accounting
// includes STF-managed movement.
func (d *Data[T]) ensureAt(place device.Place, mode AccessMode) {
	d.mu.Lock()
	defer d.mu.Unlock()
	needValid := mode != Write // Write discards previous contents.
	if place == device.Accel {
		if d.dev == nil && len(d.host) > 0 {
			d.dev, d.devPut = poolSlice[T](d.ctx.p.ScratchPool(), len(d.host))
		}
		if needValid && !d.devValid && d.hostValid {
			copy(d.dev, d.host)
			d.ctx.p.Stats().BytesH2D.Add(int64(len(d.host)) * int64(elemSize[T]()))
		}
		d.devValid = true
		if mode != Read {
			d.hostValid = false
		}
	} else {
		if needValid && !d.hostValid && d.devValid {
			copy(d.host, d.dev)
			d.ctx.p.Stats().BytesD2H.Add(int64(len(d.host)) * int64(elemSize[T]()))
		}
		d.hostValid = true
		if mode != Read {
			d.devValid = false
		}
	}
}

// writeBackLocked flushes the device copy to the host if the host copy is
// stale. Called by Finalize with the scheduler quiesced.
func (d *Data[T]) writeBackLocked() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.hostValid && d.devValid {
		copy(d.host, d.dev)
		d.ctx.p.Stats().BytesD2H.Add(int64(len(d.host)) * int64(elemSize[T]()))
		d.hostValid = true
	}
}

// Host returns the host slice. Call after Finalize (which writes back all
// device-dirty data) and before Release to read results.
func (d *Data[T]) Host() []T { return d.host }

// Detach transfers ownership of the host storage to the caller and returns
// it: Release will no longer recycle the slab, so the slice may safely
// outlive the context. Call after Finalize.
func (d *Data[T]) Detach() []T {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.detached = true
	return d.host
}

// poolSlice draws a zeroed n-element slice from the pool for the exact base
// element types the pool stocks, returning the slice and its return
// closure; derived element types fall back to plain allocation (nil put).
func poolSlice[T Element](bp *device.BufPool, n int) ([]T, func()) {
	var z T
	switch any(z).(type) {
	case byte:
		s := bp.GetBytes(n, true)
		return any(s.Data).([]T), func() { bp.PutBytes(s) }
	case uint16:
		s := bp.GetU16(n, true)
		return any(s.Data).([]T), func() { bp.PutU16(s) }
	case uint32:
		s := bp.GetU32(n, true)
		return any(s.Data).([]T), func() { bp.PutU32(s) }
	case int32:
		s := bp.GetI32(n, true)
		return any(s.Data).([]T), func() { bp.PutI32(s) }
	case float32:
		s := bp.GetF32(n, true)
		return any(s.Data).([]T), func() { bp.PutF32(s) }
	case float64:
		s := bp.GetF64(n, true)
		return any(s.Data).([]T), func() { bp.PutF64(s) }
	default:
		return make([]T, n), nil
	}
}

func elemSize[T Element]() int {
	var z T
	switch any(z).(type) {
	case byte:
		return 1
	case uint16:
		return 2
	case uint32, int32, float32:
		return 4
	case float64:
		return 8
	default:
		return 1
	}
}

// ErrSkipped marks tasks not executed because an upstream dependency
// failed.
var ErrSkipped = errors.New("stf: task skipped due to failed dependency")
