package stf

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fzmod/internal/device"
)

func newCtx() *Ctx { return NewCtx(device.NewTestPlatform()) }

func TestSingleTaskRuns(t *testing.T) {
	ctx := newCtx()
	d := NewData(ctx, "d", []float32{1, 2, 3})
	ctx.Task("double").ReadsWrites(d.D()).On(device.Accel).Do(func(ti *TaskInstance) error {
		buf := d.Acc(ti)
		for i := range buf {
			buf[i] *= 2
		}
		return nil
	})
	if err := ctx.Finalize(); err != nil {
		t.Fatal(err)
	}
	want := []float32{2, 4, 6}
	for i, v := range d.Host() {
		if v != want[i] {
			t.Errorf("host[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestRAWDependency(t *testing.T) {
	ctx := newCtx()
	a := NewScratch[int32](ctx, "a", 1)
	b := NewScratch[int32](ctx, "b", 1)
	ctx.Task("produce").Writes(a.D()).On(device.Accel).Do(func(ti *TaskInstance) error {
		time.Sleep(5 * time.Millisecond) // force consumer to actually wait
		a.Acc(ti)[0] = 41
		return nil
	})
	ctx.Task("consume").Reads(a.D()).Writes(b.D()).On(device.Host).Do(func(ti *TaskInstance) error {
		b.Acc(ti)[0] = a.Acc(ti)[0] + 1
		return nil
	})
	if err := ctx.Finalize(); err != nil {
		t.Fatal(err)
	}
	if b.Host()[0] != 42 {
		t.Errorf("b = %d, want 42 (RAW dependency violated)", b.Host()[0])
	}
}

func TestWARDependency(t *testing.T) {
	// A reader admitted before a writer must complete before the write.
	ctx := newCtx()
	d := NewData(ctx, "d", []int32{7})
	var observed int32
	ctx.Task("reader").Reads(d.D()).On(device.Host).Do(func(ti *TaskInstance) error {
		time.Sleep(10 * time.Millisecond)
		atomic.StoreInt32(&observed, d.Acc(ti)[0])
		return nil
	})
	ctx.Task("writer").Writes(d.D()).On(device.Host).Do(func(ti *TaskInstance) error {
		d.Acc(ti)[0] = 99
		return nil
	})
	if err := ctx.Finalize(); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&observed) != 7 {
		t.Errorf("reader observed %d, want 7 (WAR dependency violated)", observed)
	}
	if d.Host()[0] != 99 {
		t.Errorf("final value %d, want 99", d.Host()[0])
	}
}

func TestWAWOrdering(t *testing.T) {
	ctx := newCtx()
	d := NewScratch[int32](ctx, "d", 1)
	for i := int32(1); i <= 20; i++ {
		i := i
		ctx.Task(fmt.Sprintf("w%d", i)).Writes(d.D()).On(device.Accel).Do(func(ti *TaskInstance) error {
			d.Acc(ti)[0] = i
			return nil
		})
	}
	if err := ctx.Finalize(); err != nil {
		t.Fatal(err)
	}
	if d.Host()[0] != 20 {
		t.Errorf("final = %d, want 20 (WAW order violated)", d.Host()[0])
	}
}

func TestIndependentTasksOverlap(t *testing.T) {
	ctx := newCtx()
	a := NewScratch[int32](ctx, "a", 1)
	b := NewScratch[int32](ctx, "b", 1)
	var inA, inB atomic.Bool
	var sawOverlap atomic.Bool
	spin := func(self, other *atomic.Bool) {
		self.Store(true)
		deadline := time.Now().Add(500 * time.Millisecond)
		for time.Now().Before(deadline) {
			if other.Load() {
				sawOverlap.Store(true)
				break
			}
			time.Sleep(time.Millisecond)
		}
		self.Store(false)
	}
	ctx.Task("A").Writes(a.D()).On(device.Accel).Do(func(ti *TaskInstance) error {
		spin(&inA, &inB)
		return nil
	})
	ctx.Task("B").Writes(b.D()).On(device.Host).Do(func(ti *TaskInstance) error {
		spin(&inB, &inA)
		return nil
	})
	if err := ctx.Finalize(); err != nil {
		t.Fatal(err)
	}
	if !sawOverlap.Load() {
		t.Error("independent tasks did not overlap")
	}
	if !Overlapped(ctx.Trace()) {
		t.Error("trace does not show overlap")
	}
}

func TestCoherenceTransfersOnlyWhenStale(t *testing.T) {
	p := device.NewTestPlatform()
	ctx := NewCtx(p)
	d := NewData(ctx, "d", make([]float32, 1000))
	// Two consecutive accel readers: one H2D transfer, not two.
	for i := 0; i < 2; i++ {
		ctx.Task(fmt.Sprintf("r%d", i)).Reads(d.D()).On(device.Accel).Do(func(ti *TaskInstance) error {
			_ = d.Acc(ti)
			return nil
		})
	}
	if err := ctx.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().BytesH2D.Load(); got != 4000 {
		t.Errorf("BytesH2D = %d, want 4000 (single transfer for two reads)", got)
	}
}

func TestWriteModeSkipsTransferIn(t *testing.T) {
	p := device.NewTestPlatform()
	ctx := NewCtx(p)
	d := NewData(ctx, "d", make([]float32, 1000))
	ctx.Task("w").Writes(d.D()).On(device.Accel).Do(func(ti *TaskInstance) error {
		buf := d.Acc(ti)
		for i := range buf {
			buf[i] = 1
		}
		return nil
	})
	if err := ctx.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().BytesH2D.Load(); got != 0 {
		t.Errorf("BytesH2D = %d, want 0 (Write mode must not transfer in)", got)
	}
	// But the result must be written back.
	if d.Host()[500] != 1 {
		t.Error("device write not flushed to host")
	}
	if p.Stats().BytesD2H.Load() == 0 {
		t.Error("no D2H traffic recorded for write-back")
	}
}

func TestHostDeviceRoundtripThroughTasks(t *testing.T) {
	ctx := newCtx()
	n := 10_000
	in := make([]float32, n)
	for i := range in {
		in[i] = float32(i)
	}
	d := NewData(ctx, "d", in)
	s := NewScratch[float32](ctx, "s", n)
	ctx.Task("dev-scale").Reads(d.D()).Writes(s.D()).On(device.Accel).Do(func(ti *TaskInstance) error {
		src, dst := d.Acc(ti), s.Acc(ti)
		ti.Launch(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dst[i] = src[i] * 3
			}
		})
		return nil
	})
	ctx.Task("host-add").ReadsWrites(s.D()).On(device.Host).Do(func(ti *TaskInstance) error {
		buf := s.Acc(ti)
		ti.Launch(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				buf[i] += 1
			}
		})
		return nil
	})
	if err := ctx.Finalize(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 997 {
		want := float32(i)*3 + 1
		if s.Host()[i] != want {
			t.Fatalf("s[%d] = %v, want %v", i, s.Host()[i], want)
		}
	}
}

func TestErrorPropagationSkipsDownstream(t *testing.T) {
	ctx := newCtx()
	d := NewScratch[int32](ctx, "d", 1)
	boom := errors.New("boom")
	ctx.Task("fail").Writes(d.D()).Do(func(ti *TaskInstance) error { return boom })
	ran := false
	ctx.Task("after").Reads(d.D()).Do(func(ti *TaskInstance) error {
		ran = true
		return nil
	})
	err := ctx.Finalize()
	if !errors.Is(err, boom) {
		t.Errorf("Finalize error = %v, want boom", err)
	}
	if ran {
		t.Error("downstream task ran despite failed dependency")
	}
}

func TestPanicInTaskBecomesError(t *testing.T) {
	ctx := newCtx()
	d := NewScratch[int32](ctx, "d", 1)
	ctx.Task("panics").Writes(d.D()).Do(func(ti *TaskInstance) error {
		panic("kaboom")
	})
	err := ctx.Finalize()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("Finalize error = %v, want panic captured", err)
	}
}

func TestUndeclaredAccessPanics(t *testing.T) {
	ctx := newCtx()
	a := NewScratch[int32](ctx, "a", 1)
	b := NewScratch[int32](ctx, "b", 1)
	ctx.Task("sneaky").Writes(a.D()).Do(func(ti *TaskInstance) error {
		_ = b.Acc(ti) // not declared
		return nil
	})
	err := ctx.Finalize()
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("expected undeclared-access panic to surface, got %v", err)
	}
}

func TestDOTExport(t *testing.T) {
	ctx := newCtx()
	a := NewScratch[int32](ctx, "a", 1)
	ctx.Task("w").Writes(a.D()).On(device.Accel).Do(func(ti *TaskInstance) error { return nil })
	ctx.Task("r").Reads(a.D()).Do(func(ti *TaskInstance) error { return nil })
	if err := ctx.Finalize(); err != nil {
		t.Fatal(err)
	}
	dot := ctx.DOT()
	for _, want := range []string{"digraph stf", "t0 -> t1", "w@accel", "r@host"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestCriticalPath(t *testing.T) {
	ctx := newCtx()
	a := NewScratch[int32](ctx, "a", 1)
	b := NewScratch[int32](ctx, "b", 1)
	nop := func(ti *TaskInstance) error { return nil }
	ctx.Task("w1").Writes(a.D()).Do(nop)
	ctx.Task("w2").ReadsWrites(a.D()).Do(nop)
	ctx.Task("w3").ReadsWrites(a.D()).Do(nop)
	ctx.Task("indep").Writes(b.D()).Do(nop)
	if err := ctx.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := ctx.CriticalPath(); got != 3 {
		t.Errorf("critical path = %d, want 3", got)
	}
}

func TestAccessModeString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || ReadWrite.String() != "rw" {
		t.Error("AccessMode.String mismatch")
	}
	if AccessMode(7).String() != "mode(7)" {
		t.Error("unknown mode formatting")
	}
}

// TestRandomDAGMatchesSequential builds random task programs over several
// logical data and checks the parallel engine computes exactly what a
// sequential interpretation of the same program computes. This is the core
// correctness property of dependency inference.
func TestRandomDAGMatchesSequential(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		const nData = 4
		const nTasks = 25

		// Sequential reference state.
		ref := make([][]int32, nData)
		for i := range ref {
			ref[i] = make([]int32, 8)
		}

		ctx := newCtx()
		data := make([]*Data[int32], nData)
		for i := range data {
			data[i] = NewScratch[int32](ctx, fmt.Sprintf("d%d", i), 8)
		}

		for k := 0; k < nTasks; k++ {
			src := rng.Intn(nData)
			dst := rng.Intn(nData)
			mul := int32(rng.Intn(5) + 1)
			place := device.Place(rng.Intn(2))
			// Reference: dst[j] = src[j]*mul + j
			for j := range ref[dst] {
				newv := ref[src][j]*mul + int32(j)
				ref[dst][j] = newv
			}
			// Parallel program. Note src may equal dst; declare RW then.
			s, d2, m := data[src], data[dst], mul
			tb := ctx.Task(fmt.Sprintf("t%d", k)).On(place)
			if src == dst {
				tb = tb.ReadsWrites(d2.D())
			} else {
				tb = tb.Reads(s.D()).ReadsWrites(d2.D())
			}
			tb.Do(func(ti *TaskInstance) error {
				sv, dv := s.Acc(ti), d2.Acc(ti)
				tmp := make([]int32, len(sv))
				copy(tmp, sv)
				for j := range dv {
					dv[j] = tmp[j]*m + int32(j)
				}
				return nil
			})
		}
		if err := ctx.Finalize(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range data {
			for j, want := range ref[i] {
				if got := data[i].Host()[j]; got != want {
					t.Fatalf("trial %d: d%d[%d] = %d, want %d", trial, i, j, got, want)
				}
			}
		}
	}
}

func TestScratchDataNameAndLen(t *testing.T) {
	ctx := newCtx()
	d := NewScratch[float64](ctx, "scratch", 17)
	if d.Len() != 17 || d.Name() != "scratch" {
		t.Errorf("Len/Name = %d/%q", d.Len(), d.Name())
	}
}

func TestFinalizeWithNoTasks(t *testing.T) {
	ctx := newCtx()
	if err := ctx.Finalize(); err != nil {
		t.Errorf("empty Finalize = %v", err)
	}
}

func TestManyElementsTypes(t *testing.T) {
	ctx := newCtx()
	db := NewData(ctx, "b", []byte{1, 2})
	du := NewData(ctx, "u16", []uint16{3})
	dw := NewData(ctx, "u32", []uint32{4})
	di := NewData(ctx, "i32", []int32{-5})
	df := NewData(ctx, "f64", []float64{6.5})
	ctx.Task("touch").ReadsWrites(db.D(), du.D(), dw.D(), di.D(), df.D()).On(device.Accel).
		Do(func(ti *TaskInstance) error {
			db.Acc(ti)[0]++
			du.Acc(ti)[0]++
			dw.Acc(ti)[0]++
			di.Acc(ti)[0]--
			df.Acc(ti)[0] += 0.5
			return nil
		})
	if err := ctx.Finalize(); err != nil {
		t.Fatal(err)
	}
	if db.Host()[0] != 2 || du.Host()[0] != 4 || dw.Host()[0] != 5 || di.Host()[0] != -6 || df.Host()[0] != 7.0 {
		t.Error("typed data roundtrip failed")
	}
}
