package stf

import (
	"fmt"
	"testing"
	"time"

	"fzmod/internal/device"
)

// skewedResults runs the pathological skew graph — one huge task plus many
// tiny ones, all independent — over a pool of the given width and returns
// the per-task results and the execution trace. Costs are wall-clock
// (sleeps), so even a single-core host interleaves the workers and the
// busy-ness assertion is deterministic.
func skewedResults(t *testing.T, p *device.Platform, workers, nTiny int) ([]uint64, []TaskTrace) {
	t.Helper()
	ctx := NewCtxN(p, workers)
	results := make([]uint64, nTiny+1)
	declare := func(i, iters int, pause time.Duration) {
		tok := NewToken(ctx, fmt.Sprintf("tok%d", i))
		ctx.Task(fmt.Sprintf("task%d", i)).On(device.Host).Writes(tok.D()).
			Do(func(ti *TaskInstance) error {
				h := uint64(14695981039346656037)
				for k := 0; k < iters; k++ {
					h ^= uint64(i + k)
					h *= 1099511628211
				}
				time.Sleep(pause)
				results[i] = h
				return nil
			})
	}
	// Task 0 is the pathological chunk: ~20x the tiny tasks' span.
	declare(0, 1<<16, 20*time.Millisecond)
	for i := 1; i <= nTiny; i++ {
		declare(i, 1<<10, time.Millisecond)
	}
	if err := ctx.Finalize(); err != nil {
		t.Fatal(err)
	}
	trace := ctx.Trace()
	ctx.Release()
	return results, trace
}

// TestWorkStealingSkewedCosts is the scheduler stress test (run under
// -race in CI): a pathologically skewed graph must keep every worker of
// the pool busy — the huge task pins one worker while the rest drain and
// steal the tiny tasks — and the results must match the serial (one
// worker) executor bit for bit.
func TestWorkStealingSkewedCosts(t *testing.T) {
	p := device.NewTestPlatform()
	defer p.Close()
	const workers = 4
	const nTiny = 63

	parallel, trace := skewedResults(t, p, workers, nTiny)
	if len(trace) != nTiny+1 {
		t.Fatalf("trace has %d tasks, want %d", len(trace), nTiny+1)
	}
	perWorker := map[int]int{}
	for _, tr := range trace {
		if tr.Err != nil {
			t.Fatalf("task %s failed: %v", tr.Name, tr.Err)
		}
		perWorker[tr.Worker]++
	}
	if len(perWorker) != workers {
		t.Errorf("only %d of %d workers executed tasks: %v", len(perWorker), workers, perWorker)
	}
	// No worker may have sat the run out while the huge task convoyed the
	// rest: the huge task's worker handles ~1 task, the others split the
	// tiny ones.
	for id, n := range perWorker {
		if n == 0 {
			t.Errorf("worker %d executed nothing", id)
		}
	}

	serial, _ := skewedResults(t, p, 1, nTiny)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("result %d: parallel %x != serial %x", i, parallel[i], serial[i])
		}
	}
}

// TestSkewStressManyRounds hammers the scheduler with repeated skewed
// graphs on one context-per-round to surface lost-wakeup or shutdown races
// under -race.
func TestSkewStressManyRounds(t *testing.T) {
	p := device.NewTestPlatform()
	defer p.Close()
	for round := 0; round < 8; round++ {
		ctx := NewCtxN(p, 3)
		total := 0
		sink := make([]int, 24)
		for i := range sink {
			i := i
			tok := NewToken(ctx, fmt.Sprintf("r%d", i))
			ctx.Task(fmt.Sprintf("r%d", i)).On(device.Host).Writes(tok.D()).
				Do(func(ti *TaskInstance) error {
					sink[i] = i + 1
					return nil
				})
		}
		if err := ctx.Finalize(); err != nil {
			t.Fatal(err)
		}
		ctx.Release()
		for _, v := range sink {
			total += v
		}
		if want := len(sink) * (len(sink) + 1) / 2; total != want {
			t.Fatalf("round %d: sum %d, want %d", round, total, want)
		}
	}
}

// TestTaskInstanceShard checks that task bodies receive a usable private
// pool shard and that slabs cycled through it are accounted exactly like
// direct pool traffic (gets and puts balance after Release drains the
// worker shards).
func TestTaskInstanceShard(t *testing.T) {
	p := device.NewTestPlatform()
	defer p.Close()
	before := p.ScratchPool().Stats()
	ctx := NewCtxN(p, 2)
	for i := 0; i < 8; i++ {
		tok := NewToken(ctx, fmt.Sprintf("s%d", i))
		ctx.Task(fmt.Sprintf("s%d", i)).On(device.Host).Writes(tok.D()).
			Do(func(ti *TaskInstance) error {
				sh := ti.Shard()
				if sh == nil {
					return fmt.Errorf("nil shard")
				}
				a := sh.GetU16(4096, true)
				b := sh.GetBytes(1<<14, false)
				a.Data[0] = 7
				b.Data[0] = 7
				sh.PutBytes(b)
				sh.PutU16(a)
				return nil
			})
	}
	if err := ctx.Finalize(); err != nil {
		t.Fatal(err)
	}
	ctx.Release()
	after := p.ScratchPool().Stats()
	gets := after.Gets - before.Gets
	puts := after.Puts - before.Puts
	if gets != puts {
		t.Errorf("shard traffic unbalanced: %d gets, %d puts", gets, puts)
	}
	if gets < 16 {
		t.Errorf("expected at least 16 checkouts, saw %d", gets)
	}
}
