package stf

import (
	"sync/atomic"
	"testing"
	"time"

	"fzmod/internal/device"
)

// TestScratchReleaseRecycles checks that Release hands scratch storage
// back to the platform pool and a second context reuses it.
func TestScratchReleaseRecycles(t *testing.T) {
	p := device.NewTestPlatform()
	run := func() {
		ctx := NewCtx(p)
		d := NewScratch[float32](ctx, "s", 5000)
		ctx.Task("fill").Writes(d.D()).On(device.Accel).Do(func(ti *TaskInstance) error {
			buf := d.Acc(ti)
			for i := range buf {
				buf[i] = 1
			}
			return nil
		})
		if err := ctx.Finalize(); err != nil {
			t.Fatal(err)
		}
		if d.Host()[4999] != 1 {
			t.Fatal("scratch not written back")
		}
		ctx.Release()
	}
	run()
	before := p.ScratchPool().Stats()
	run()
	after := p.ScratchPool().Stats()
	if !device.RaceEnabled && after.Hits <= before.Hits {
		t.Errorf("second run did not hit the pool (hits %d -> %d)", before.Hits, after.Hits)
	}
}

// TestDetachSurvivesRelease checks ownership transfer: a detached result
// keeps its contents across Release and later pool reuse.
func TestDetachSurvivesRelease(t *testing.T) {
	p := device.NewTestPlatform()
	ctx := NewCtx(p)
	d := NewScratch[int32](ctx, "out", 2048)
	ctx.Task("fill").Writes(d.D()).Do(func(ti *TaskInstance) error {
		for i := range d.Acc(ti) {
			d.Acc(ti)[i] = 7
		}
		return nil
	})
	if err := ctx.Finalize(); err != nil {
		t.Fatal(err)
	}
	vals := d.Detach()
	ctx.Release()
	// Churn the pool: anything still shared with the detached slice would
	// be overwritten here.
	for i := 0; i < 4; i++ {
		s := p.ScratchPool().GetI32(2048, true)
		p.ScratchPool().PutI32(s)
	}
	ctx2 := NewCtx(p)
	d2 := NewScratch[int32](ctx2, "other", 2048)
	ctx2.Task("clobber").Writes(d2.D()).Do(func(ti *TaskInstance) error {
		for i := range d2.Acc(ti) {
			d2.Acc(ti)[i] = -1
		}
		return nil
	})
	if err := ctx2.Finalize(); err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != 7 {
			t.Fatalf("detached value clobbered at %d: %d", i, v)
		}
	}
	ctx2.Release()
}

// TestBarrierAllowsIncrementalGraphs checks the mid-build synchronize used
// for data-dependent graph shapes (e.g. the secondary-decode task).
func TestBarrierAllowsIncrementalGraphs(t *testing.T) {
	ctx := NewCtx(device.NewTestPlatform())
	a := NewScratch[int32](ctx, "a", 1)
	ctx.Task("first").Writes(a.D()).Do(func(ti *TaskInstance) error {
		a.Acc(ti)[0] = 10
		return nil
	})
	ctx.Barrier()
	// The result of the first phase shapes the second.
	n := int(a.Host()[0])
	b := NewScratch[int32](ctx, "b", n)
	ctx.Task("second").Reads(a.D()).Writes(b.D()).Do(func(ti *TaskInstance) error {
		buf := b.Acc(ti)
		for i := range buf {
			buf[i] = a.Acc(ti)[0]
		}
		return nil
	})
	if err := ctx.Finalize(); err != nil {
		t.Fatal(err)
	}
	if len(b.Host()) != 10 || b.Host()[9] != 10 {
		t.Errorf("incremental graph result = %v", b.Host())
	}
	ctx.Release()
}

// TestTokenCarriesDependency checks that zero-length tokens order tasks.
func TestTokenCarriesDependency(t *testing.T) {
	ctx := NewCtx(device.NewTestPlatform())
	tok := NewToken(ctx, "tok")
	order := make(chan int, 2)
	ctx.Task("producer").Writes(tok.D()).Do(func(ti *TaskInstance) error {
		order <- 1
		return nil
	})
	ctx.Task("consumer").Reads(tok.D()).Do(func(ti *TaskInstance) error {
		order <- 2
		return nil
	})
	if err := ctx.Finalize(); err != nil {
		t.Fatal(err)
	}
	if first := <-order; first != 1 {
		t.Error("consumer ran before producer")
	}
}

// TestBoundedConcurrency checks the stream-pool width actually caps
// in-flight task bodies per place.
func TestBoundedConcurrency(t *testing.T) {
	ctx := NewCtxN(device.NewTestPlatform(), 2)
	var cur, peak atomic.Int32
	for i := 0; i < 12; i++ {
		d := NewScratch[int32](ctx, "d", 1)
		ctx.Task("t").Writes(d.D()).On(device.Accel).Do(func(ti *TaskInstance) error {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		})
	}
	if err := ctx.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > 2 {
		t.Errorf("observed %d concurrent bodies, pool width is 2", got)
	}
	ctx.Release()
}
