package lorenzo

import (
	"math"
	"math/rand"
	"testing"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/kernels/dispatch"
)

var tp = device.NewTestPlatform()

func maxAbsErr(a, b []float32) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m {
			m = d
		}
	}
	return m
}

func smooth3D(dims grid.Dims, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	px, py, pz := rng.Float64(), rng.Float64(), rng.Float64()
	out := make([]float32, dims.N())
	for z := 0; z < dims.Z; z++ {
		for y := 0; y < dims.Y; y++ {
			for x := 0; x < dims.X; x++ {
				v := math.Sin(0.11*float64(x)+px) * math.Cos(0.07*float64(y)+py) * math.Sin(0.05*float64(z)+pz)
				out[dims.Idx(x, y, z)] = float32(v)
			}
		}
	}
	return out
}

// boundTol is the roundtrip tolerance: eb plus half a float32 ULP of the
// largest data magnitude (the unavoidable output-rounding slack documented
// on the package).
func boundTol(data []float32, eb float64) float64 {
	var m float64
	for _, v := range data {
		if a := math.Abs(float64(v)); a > m {
			m = a
		}
	}
	return eb + m/(1<<23) + 1e-12
}

func roundtrip(t *testing.T, data []float32, dims grid.Dims, eb float64) *Quantized {
	t.Helper()
	q, err := Encode(tp, device.Accel, data, dims, eb, 0)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(tp, device.Accel, q, dims, eb)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if e := maxAbsErr(data, got); e > boundTol(data, eb) {
		t.Fatalf("dims %v eb %g: max error %g exceeds bound", dims, eb, e)
	}
	return q
}

func TestRoundtrip1D(t *testing.T) {
	dims := grid.D1(5000)
	data := make([]float32, dims.N())
	for i := range data {
		data[i] = float32(math.Sin(float64(i) * 0.01))
	}
	roundtrip(t, data, dims, 1e-3)
}

func TestRoundtrip2D(t *testing.T) {
	dims := grid.D2(120, 85)
	roundtrip(t, smooth3D(dims, 1), dims, 1e-3)
}

func TestRoundtrip3D(t *testing.T) {
	dims := grid.D3(40, 33, 27)
	roundtrip(t, smooth3D(dims, 2), dims, 1e-4)
}

func TestRoundtripMultipleBounds(t *testing.T) {
	dims := grid.D3(32, 32, 16)
	data := smooth3D(dims, 3)
	for _, eb := range []float64{1e-2, 1e-3, 1e-4, 1e-5} {
		roundtrip(t, data, dims, eb)
	}
}

func TestRoughDataProducesOutliersButStaysBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dims := grid.D1(20000)
	data := make([]float32, dims.N())
	for i := range data {
		data[i] = float32(rng.NormFloat64() * 100)
	}
	eb := 1e-3
	q := roundtrip(t, data, dims, eb)
	if q.OutlierCount() == 0 {
		t.Error("white noise at tight bound should generate outliers")
	}
}

func TestSmoothDataFewOutliers(t *testing.T) {
	dims := grid.D3(32, 32, 32)
	q := roundtrip(t, smooth3D(dims, 5), dims, 1e-3)
	if frac := float64(q.OutlierCount()) / float64(dims.N()); frac > 0.01 {
		t.Errorf("smooth data outlier fraction %.3f, want < 1%%", frac)
	}
}

func TestCodesCenteredAtRadius(t *testing.T) {
	dims := grid.D3(24, 24, 24)
	q := roundtrip(t, smooth3D(dims, 6), dims, 1e-3)
	// Smooth data → most codes near radius (zero residual).
	center := 0
	for _, c := range q.Codes {
		if int(c) >= q.Radius-2 && int(c) <= q.Radius+2 {
			center++
		}
	}
	if float64(center) < 0.5*float64(len(q.Codes)) {
		t.Errorf("only %d/%d codes near radius; predictor is not predicting", center, len(q.Codes))
	}
}

func TestConstantField(t *testing.T) {
	dims := grid.D3(16, 16, 16)
	data := make([]float32, dims.N())
	for i := range data {
		data[i] = 42.5
	}
	q := roundtrip(t, data, dims, 1e-2)
	if q.OutlierCount() > 1 {
		t.Errorf("constant field produced %d outliers", q.OutlierCount())
	}
}

func TestEncodeErrors(t *testing.T) {
	data := make([]float32, 8)
	if _, err := Encode(tp, device.Accel, data, grid.D1(9), 1e-3, 0); err == nil {
		t.Error("dims mismatch should fail")
	}
	if _, err := Encode(tp, device.Accel, data, grid.D1(8), 0, 0); err == nil {
		t.Error("zero eb should fail")
	}
	if _, err := Encode(tp, device.Accel, data, grid.D1(8), -1, 0); err == nil {
		t.Error("negative eb should fail")
	}
}

func TestLatticeOverflowDetected(t *testing.T) {
	data := []float32{1e30, -1e30}
	if _, err := Encode(tp, device.Accel, data, grid.D1(2), 1e-6, 0); err == nil {
		t.Error("huge magnitude with tiny eb should report lattice overflow")
	}
}

func TestDecodeErrors(t *testing.T) {
	q := &Quantized{Codes: make([]uint16, 4), Radius: 512}
	if _, err := Decode(tp, device.Accel, q, grid.D1(5), 1e-3); err == nil {
		t.Error("code/dims mismatch should fail")
	}
	q2 := &Quantized{Codes: make([]uint16, 4), Radius: 0}
	if _, err := Decode(tp, device.Accel, q2, grid.D1(4), 1e-3); err == nil {
		t.Error("invalid radius should fail")
	}
	q3 := &Quantized{Codes: make([]uint16, 4), Radius: 512, OutIdx: []uint32{9}, OutVal: []int32{1}}
	if _, err := Decode(tp, device.Accel, q3, grid.D1(4), 1e-3); err == nil {
		t.Error("out-of-range outlier index should fail")
	}
	q4 := &Quantized{Codes: make([]uint16, 4), Radius: 512, OutIdx: []uint32{1}, OutVal: nil}
	if _, err := Decode(tp, device.Accel, q4, grid.D1(4), 1e-3); err == nil {
		t.Error("outlier length mismatch should fail")
	}
}

func TestCustomRadius(t *testing.T) {
	dims := grid.D2(64, 64)
	data := smooth3D(dims, 7)
	q, err := Encode(tp, device.Accel, data, dims, 1e-3, 128)
	if err != nil {
		t.Fatal(err)
	}
	if q.Radius != 128 {
		t.Errorf("radius = %d, want 128", q.Radius)
	}
	for _, c := range q.Codes {
		if int(c) >= 256 {
			t.Fatalf("code %d exceeds 2*radius-1", c)
		}
	}
	got, err := Decode(tp, device.Accel, q, dims, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxAbsErr(data, got); e > 1e-3+1e-12 {
		t.Errorf("custom radius roundtrip error %g", e)
	}
}

func TestNonPowerOfTwoDims(t *testing.T) {
	dims := grid.D3(17, 13, 11)
	roundtrip(t, smooth3D(dims, 8), dims, 1e-3)
}

func TestSingleElement(t *testing.T) {
	roundtrip(t, []float32{3.14159}, grid.D1(1), 1e-4)
}

// Property: for random smooth-ish fields at random bounds, the roundtrip
// respects the bound and the encoder is deterministic.
func TestPropertyBoundHolds(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		dims := grid.D3(5+rng.Intn(20), 5+rng.Intn(20), 1+rng.Intn(10))
		data := make([]float32, dims.N())
		acc := float32(0)
		for i := range data {
			acc += float32(rng.NormFloat64() * 0.1) // random walk = locally smooth
			data[i] = acc
		}
		eb := math.Pow(10, -1-3*rng.Float64())
		q1 := roundtrip(t, data, dims, eb)
		q2, err := Encode(tp, device.Accel, data, dims, eb, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(q1.OutIdx) != len(q2.OutIdx) {
			t.Fatalf("trial %d: encoder nondeterministic", trial)
		}
		for i := range q1.Codes {
			if q1.Codes[i] != q2.Codes[i] {
				t.Fatalf("trial %d: encoder nondeterministic at %d", trial, i)
			}
		}
	}
}

// refQuantized is a deliberately naive re-implementation of the historical
// three-phase encoder (pre-quantize, per-element closure residual, flag
// compaction) used as the reference the fused rank-specialized kernels
// must match bit for bit.
func refQuantized(t *testing.T, data []float32, dims grid.Dims, eb float64, radius int) *Quantized {
	t.Helper()
	if radius <= 0 {
		radius = DefaultRadius
	}
	n := dims.N()
	ebx2r := 1.0 / (2 * eb)
	q := make([]int32, n)
	for i, v := range data {
		r := math.Round(float64(v) * ebx2r)
		if r > maxLattice || r < -maxLattice {
			t.Fatal("reference overflow; pick tamer test data")
		}
		q[i] = int32(r)
	}
	at := func(x, y, z int) int32 {
		if x < 0 || y < 0 || z < 0 {
			return 0
		}
		return q[dims.Idx(x, y, z)]
	}
	out := &Quantized{Codes: make([]uint16, n), Radius: radius}
	r32 := int32(radius)
	for i := 0; i < n; i++ {
		x, y, z := dims.Coords(i)
		d := q[i] -
			at(x-1, y, z) - at(x, y-1, z) - at(x, y, z-1) +
			at(x-1, y-1, z) + at(x-1, y, z-1) + at(x, y-1, z-1) -
			at(x-1, y-1, z-1)
		if d > -r32 && d < r32 {
			out.Codes[i] = uint16(d + r32)
		} else {
			out.OutIdx = append(out.OutIdx, uint32(i))
			out.OutVal = append(out.OutVal, d)
		}
	}
	return out
}

// TestFusedMatchesReference pins the fused kernels to the naive reference:
// identical codes and an identical sorted outlier stream across ranks,
// non-power-of-two extents, and multi-block decompositions (the test
// platform runs 4 accelerator workers, so slow extents above 4 split).
func TestFusedMatchesReference(t *testing.T) {
	for _, dims := range []grid.Dims{
		grid.D1(1), grid.D1(7), grid.D1(20000),
		grid.D2(33, 19), grid.D2(128, 9),
		grid.D3(17, 13, 11), grid.D3(40, 33, 27), grid.D3(8, 8, 3),
	} {
		rng := rand.New(rand.NewSource(int64(dims.N())))
		data := make([]float32, dims.N())
		acc := float32(0)
		for i := range data {
			if rng.Intn(64) == 0 {
				acc += float32(rng.NormFloat64() * 50) // jump → outlier
			}
			acc += float32(rng.NormFloat64() * 0.05)
			data[i] = acc
		}
		eb := 1e-3
		want := refQuantized(t, data, dims, eb, 0)
		got, err := Encode(tp, device.Accel, data, dims, eb, 0)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		for i := range want.Codes {
			if got.Codes[i] != want.Codes[i] {
				t.Fatalf("%v: code mismatch at %d: %d vs %d", dims, i, got.Codes[i], want.Codes[i])
			}
		}
		if len(got.OutIdx) != len(want.OutIdx) {
			t.Fatalf("%v: %d outliers, want %d", dims, len(got.OutIdx), len(want.OutIdx))
		}
		for j := range want.OutIdx {
			if got.OutIdx[j] != want.OutIdx[j] || got.OutVal[j] != want.OutVal[j] {
				t.Fatalf("%v: outlier %d = (%d,%d), want (%d,%d)", dims, j,
					got.OutIdx[j], got.OutVal[j], want.OutIdx[j], want.OutVal[j])
			}
		}
	}
}

// TestOverflowContract exercises the documented overflow contract: any
// pre-quantized magnitude beyond the lattice guard yields an error — no
// matter which block of a parallel decomposition the point (or the halo
// copy of it) lands in — and the pooled scratch all comes back.
func TestOverflowContract(t *testing.T) {
	dims := grid.D3(16, 16, 16)
	base := smooth3D(dims, 9)
	for _, plane := range []int{0, 3, 4, 7, 15} {
		data := make([]float32, dims.N())
		copy(data, base)
		// One overflowing point inside plane z=plane; with 4 test-platform
		// workers the 16-plane extent splits into 4-plane blocks, so
		// planes 3 and 7 also exercise the halo re-quantization path of
		// the following block.
		data[dims.Idx(5, 5, plane)] = 1e30
		codes := make([]uint16, dims.N())
		_, err := EncodeInto(tp, device.Accel, data, dims, 1e-6, 0, codes)
		if err == nil {
			t.Fatalf("plane %d: overflow must be reported", plane)
		}
	}
	if st := tp.ScratchPool().Stats(); st.Gets != st.Puts {
		t.Errorf("overflow path leaked pool slabs: %d gets, %d puts", st.Gets, st.Puts)
	}
}

func TestDecodeIntoMatchesDecode(t *testing.T) {
	dims := grid.D3(24, 17, 9)
	data := smooth3D(dims, 10)
	q, err := Encode(tp, device.Accel, data, dims, 1e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decode(tp, device.Accel, q, dims, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, dims.N())
	if err := DecodeInto(tp, device.Accel, q, dims, 1e-3, dst); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
	if err := DecodeInto(tp, device.Accel, q, dims, 1e-3, dst[:5]); err == nil {
		t.Error("short output buffer must fail")
	}
}

func benchField(dims grid.Dims) []float32 {
	rng := rand.New(rand.NewSource(77))
	data := make([]float32, dims.N())
	acc := float32(0)
	for i := range data {
		acc += float32(rng.NormFloat64() * 0.01)
		data[i] = acc
	}
	return data
}

// benchKernelTiers runs f once per kernel implementation tier this build
// supports (purego plus the vector tier, when present), so one run reports
// before/after numbers for the dispatch layer.
func benchKernelTiers(b *testing.B, f func(b *testing.B)) {
	b.Helper()
	defer func() { _ = dispatch.Use("auto") }()
	for _, tier := range dispatch.Tiers() {
		if err := dispatch.Use(tier); err != nil {
			b.Fatalf("Use(%q): %v", tier, err)
		}
		b.Run(tier, f)
	}
}

func BenchmarkLorenzoQuantize(b *testing.B) {
	dims := grid.D3(128, 128, 128)
	data := benchField(dims)
	codes := make([]uint16, dims.N())
	benchKernelTiers(b, func(b *testing.B) {
		b.SetBytes(int64(4 * dims.N()))
		for i := 0; i < b.N; i++ {
			if _, err := EncodeInto(tp, device.Accel, data, dims, 1e-3, 0, codes); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkLorenzoReconstruct(b *testing.B) {
	dims := grid.D3(128, 128, 128)
	data := benchField(dims)
	q, err := Encode(tp, device.Accel, data, dims, 1e-3, 0)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float32, dims.N())
	b.SetBytes(int64(4 * dims.N()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(tp, device.Accel, q, dims, 1e-3, out); err != nil {
			b.Fatal(err)
		}
	}
}
