// Package lorenzo implements the multidimensional Lorenzo predictor with
// error-controlled dual quantization, the prediction module of
// FZMod-Default and FZMod-Speed. It reproduces the cuSZ design (§3.1):
// values are first pre-quantized onto the 2·eb lattice, the Lorenzo
// extrapolation runs in exact integer arithmetic on the lattice codes, and
// prediction residuals are emitted as bounded quantization codes with an
// escape mechanism for unpredictable points (outliers).
//
// As with the compressors in the paper, the error bound is guaranteed in
// exact arithmetic and therefore holds in float32 up to half a ULP of the
// reconstructed value — large-magnitude data at very tight bounds can
// exceed eb by |value|·2⁻²⁴ simply because float32 cannot represent values
// any closer.
//
// Because the residual operator is the separable difference
// (1-Sx)(1-Sy)(1-Sz) over lattice codes, reconstruction is exact: the
// decoder applies prefix sums along each dimension, so the only error in
// the pipeline is the initial lattice rounding, which is ≤ eb by
// construction. That is what makes the bound strict end to end.
package lorenzo

import (
	"fmt"
	"math"
	"sync/atomic"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/kernels"
)

// DefaultRadius is the quantization-code radius used by cuSZ: residuals in
// (-radius, radius) map to codes 1..2·radius-1; code 0 is the outlier
// escape. The histogram and Huffman stages size their alphabets from it.
const DefaultRadius = 512

// maxLattice guards the int32 lattice arithmetic: pre-quantized magnitudes
// beyond this risk overflow in the residual computation, so such points are
// rejected with an error telling the caller to relax the bound.
const maxLattice = 1 << 29

// Quantized is the output of the prediction+quantization stage: one code
// per input value plus the compacted outlier set. It is the interchange
// format every primary encoder in the framework consumes.
type Quantized struct {
	Codes  []uint16 // len = Dims.N(); 0 means "outlier at this index"
	OutIdx []uint32 // sorted indices of outliers
	OutVal []int32  // lattice residual at each outlier index
	Radius int
}

// OutlierCount returns the number of escape-coded points.
func (q *Quantized) OutlierCount() int { return len(q.OutIdx) }

// Encode runs prediction+quantization over data at place with absolute
// error bound eb. radius ≤ 0 selects DefaultRadius.
func Encode(p *device.Platform, place device.Place, data []float32, dims grid.Dims, eb float64, radius int) (*Quantized, error) {
	return EncodeInto(p, place, data, dims, eb, radius, nil)
}

// EncodeInto is Encode quantizing into a caller-provided codes slice of
// exactly dims.N() elements (any contents; it is cleared first), so
// executors processing many chunks can recycle one code buffer instead of
// allocating per chunk. The returned Quantized aliases codes. A nil codes
// allocates, exactly like Encode.
func EncodeInto(p *device.Platform, place device.Place, data []float32, dims grid.Dims, eb float64, radius int, codes []uint16) (*Quantized, error) {
	if !dims.Valid() || dims.N() != len(data) {
		return nil, fmt.Errorf("lorenzo: dims %v do not match %d values", dims, len(data))
	}
	if eb <= 0 {
		return nil, fmt.Errorf("lorenzo: error bound must be positive, got %g", eb)
	}
	if codes != nil && len(codes) != dims.N() {
		return nil, fmt.Errorf("lorenzo: codes buffer has %d elements, want %d", len(codes), dims.N())
	}
	if radius <= 0 {
		radius = DefaultRadius
	}
	n := dims.N()
	ebx2r := 1.0 / (2 * eb)
	pool := p.ScratchPool()

	// Phase 1: pre-quantize onto the 2·eb lattice. The lattice and the
	// outlier flags are pooled scratch — they die inside this call, so
	// steady-state encoding reuses the same slabs chunk after chunk.
	latticeSlab := pool.GetI32(n, false)
	lattice := latticeSlab.Data
	var overflow atomic.Bool
	p.LaunchGrid(place, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := math.Round(float64(data[i]) * ebx2r)
			if v > maxLattice || v < -maxLattice {
				overflow.Store(true)
				return
			}
			lattice[i] = int32(v)
		}
	})
	if overflow.Load() {
		pool.PutI32(latticeSlab)
		return nil, fmt.Errorf("lorenzo: error bound %g too tight for data magnitude (lattice overflow); relax the bound", eb)
	}

	// Phase 2: Lorenzo residual + code emission + outlier flags. Escape
	// marking leaves codes[i] at 0, so a recycled buffer must be cleared.
	if codes == nil {
		codes = make([]uint16, n)
	} else {
		clear(codes)
	}
	flagsSlab := pool.GetU32(n, true) // escape marking assumes zeroed flags
	flags := flagsSlab.Data
	resid := residualFn(dims, lattice)
	r32 := int32(radius)
	p.LaunchGrid(place, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d := resid(i)
			if d > -r32 && d < r32 {
				codes[i] = uint16(d + r32)
			} else {
				flags[i] = 1 // escape: codes[i] stays 0
			}
		}
	})

	// Phase 3: compact outliers (scan + scatter, the GPU idiom).
	outIdx := kernels.CompactU32(p, place, flags)
	pool.PutU32(flagsSlab)
	outVal := make([]int32, len(outIdx))
	p.LaunchGrid(place, len(outIdx), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			outVal[j] = resid(int(outIdx[j]))
		}
	})
	pool.PutI32(latticeSlab)
	return &Quantized{Codes: codes, OutIdx: outIdx, OutVal: outVal, Radius: radius}, nil
}

// residualFn returns the Lorenzo residual at linear index i given the
// lattice codes, specialized per rank.
func residualFn(dims grid.Dims, q []int32) func(i int) int32 {
	at := func(x, y, z int) int32 {
		if x < 0 || y < 0 || z < 0 {
			return 0
		}
		return q[dims.Idx(x, y, z)]
	}
	switch dims.Rank() {
	case 1:
		return func(i int) int32 {
			if i == 0 {
				return q[0]
			}
			return q[i] - q[i-1]
		}
	case 2:
		return func(i int) int32 {
			x, y, _ := dims.Coords(i)
			return q[i] - at(x-1, y, 0) - at(x, y-1, 0) + at(x-1, y-1, 0)
		}
	default:
		return func(i int) int32 {
			x, y, z := dims.Coords(i)
			return q[i] -
				at(x-1, y, z) - at(x, y-1, z) - at(x, y, z-1) +
				at(x-1, y-1, z) + at(x-1, y, z-1) + at(x, y-1, z-1) -
				at(x-1, y-1, z-1)
		}
	}
}

// Decode reconstructs the field from a Quantized stream. The result is
// within eb of the original input everywhere.
func Decode(p *device.Platform, place device.Place, q *Quantized, dims grid.Dims, eb float64) ([]float32, error) {
	n := dims.N()
	if len(q.Codes) != n {
		return nil, fmt.Errorf("lorenzo: %d codes for dims %v (%d values)", len(q.Codes), dims, n)
	}
	if q.Radius <= 0 {
		return nil, fmt.Errorf("lorenzo: invalid radius %d", q.Radius)
	}
	if len(q.OutIdx) != len(q.OutVal) {
		return nil, fmt.Errorf("lorenzo: outlier index/value length mismatch %d vs %d", len(q.OutIdx), len(q.OutVal))
	}
	r32 := int32(q.Radius)

	// Residuals from codes; outlier escapes filled by scatter. Pooled:
	// the lattice is dead once the float field is materialized.
	pool := p.ScratchPool()
	latticeSlab := pool.GetI32(n, true) // non-escape positions rely on zero
	lattice := latticeSlab.Data
	p.LaunchGrid(place, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if c := q.Codes[i]; c != 0 {
				lattice[i] = int32(c) - r32
			}
		}
	})
	for j, idx := range q.OutIdx {
		if int(idx) >= n {
			pool.PutI32(latticeSlab)
			return nil, fmt.Errorf("lorenzo: outlier index %d out of range %d", idx, n)
		}
		lattice[idx] = q.OutVal[j]
	}

	// Invert the separable difference with per-dimension prefix sums,
	// parallel across the independent lines of each sweep.
	prefixSums(p, place, lattice, dims)

	out := make([]float32, n)
	scale := 2 * eb
	p.LaunchGrid(place, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float32(float64(lattice[i]) * scale)
		}
	})
	pool.PutI32(latticeSlab)
	return out, nil
}

// prefixSums applies cumulative sums along x, then y, then z in place.
func prefixSums(p *device.Platform, place device.Place, q []int32, dims grid.Dims) {
	nx, ny, nz := dims.X, dims.Y, dims.Z
	// Along x: one independent line per (y, z).
	p.LaunchGrid(place, ny*nz, func(lo, hi int) {
		for l := lo; l < hi; l++ {
			base := l * nx
			var acc int32
			for x := 0; x < nx; x++ {
				acc += q[base+x]
				q[base+x] = acc
			}
		}
	})
	if dims.Rank() >= 2 {
		// Along y: one line per (x, z).
		p.LaunchGrid(place, nx*nz, func(lo, hi int) {
			for l := lo; l < hi; l++ {
				x, z := l%nx, l/nx
				var acc int32
				for y := 0; y < ny; y++ {
					i := dims.Idx(x, y, z)
					acc += q[i]
					q[i] = acc
				}
			}
		})
	}
	if dims.Rank() >= 3 {
		// Along z: one line per (x, y).
		p.LaunchGrid(place, nx*ny, func(lo, hi int) {
			for l := lo; l < hi; l++ {
				x, y := l%nx, l/nx
				var acc int32
				for z := 0; z < nz; z++ {
					i := dims.Idx(x, y, z)
					acc += q[i]
					q[i] = acc
				}
			}
		})
	}
}
