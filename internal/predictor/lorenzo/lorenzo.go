// Package lorenzo implements the multidimensional Lorenzo predictor with
// error-controlled dual quantization, the prediction module of
// FZMod-Default and FZMod-Speed. It reproduces the cuSZ design (§3.1):
// values are first pre-quantized onto the 2·eb lattice, the Lorenzo
// extrapolation runs in exact integer arithmetic on the lattice codes, and
// prediction residuals are emitted as bounded quantization codes with an
// escape mechanism for unpredictable points (outliers).
//
// As with the compressors in the paper, the error bound is guaranteed in
// exact arithmetic and therefore holds in float32 up to half a ULP of the
// reconstructed value — large-magnitude data at very tight bounds can
// exceed eb by |value|·2⁻²⁴ simply because float32 cannot represent values
// any closer.
//
// Because the residual operator is the separable difference
// (1-Sx)(1-Sy)(1-Sz) over lattice codes, reconstruction is exact: the
// decoder applies prefix sums along each dimension, so the only error in
// the pipeline is the initial lattice rounding, which is ≤ eb by
// construction. That is what makes the bound strict end to end.
//
// Kernel structure: the hot loops are rank-specialized row kernels. With a
// SIMD dispatch tier installed (dispatch.VectorRows) each row runs in two
// vector phases — quantize the row onto the lattice, then emit codes from
// the stored lattice with the stencil difference kernel, recovering the
// rare outliers afterwards by re-deriving the residual at each escape
// (in-range codes are always nonzero, so code 0 identifies escapes
// exactly). Without a vector tier the rows fuse pre-quantization with
// residual+code emission in one scalar pass, so the lattice is walked once
// while hot in cache; both structures produce bit-identical codes and
// outlier streams. All neighbor accesses are direct stride offsets
// (q[i]-q[i-1]-q[i-nx]+q[i-nx-1] and the 3-D analogue). Coordinate
// arithmetic appears only at block edges, where each parallel block
// re-quantizes the single halo row/plane preceding it into private scratch
// so blocks never read lattice entries another block writes.
package lorenzo

import (
	"fmt"
	"math"
	"sync/atomic"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/kernels/dispatch"
)

// DefaultRadius is the quantization-code radius used by cuSZ: residuals in
// (-radius, radius) map to codes 1..2·radius-1; code 0 is the outlier
// escape. The histogram and Huffman stages size their alphabets from it.
const DefaultRadius = 512

// maxLattice guards the int32 lattice arithmetic: pre-quantized magnitudes
// beyond this risk overflow in the residual computation, so such points are
// rejected with an error telling the caller to relax the bound.
const maxLattice = 1 << 29

// Quantized is the output of the prediction+quantization stage: one code
// per input value plus the compacted outlier set. It is the interchange
// format every primary encoder in the framework consumes.
type Quantized struct {
	Codes  []uint16 // len = Dims.N(); 0 means "outlier at this index"
	OutIdx []uint32 // sorted indices of outliers
	OutVal []int32  // lattice residual at each outlier index
	Radius int
}

// OutlierCount returns the number of escape-coded points.
func (q *Quantized) OutlierCount() int { return len(q.OutIdx) }

// Encode runs prediction+quantization over data at place with absolute
// error bound eb. radius ≤ 0 selects DefaultRadius.
func Encode(p *device.Platform, place device.Place, data []float32, dims grid.Dims, eb float64, radius int) (*Quantized, error) {
	return EncodeInto(p, place, data, dims, eb, radius, nil)
}

// encBlock is one parallel unit of the fused encode kernel: a contiguous
// range of the field's slowest-varying dimension plus the pooled slabs its
// outliers are collected into. Outliers are appended in index order inside
// a block and blocks cover ascending index ranges, so concatenating the
// per-block sets in block order yields the globally sorted outlier stream —
// the same order the historical flag-scan-compact phase produced.
type encBlock struct {
	lo, hi  int // slow-dimension range [lo, hi)
	idxSlab *device.Slab[uint32]
	valSlab *device.Slab[int32]
	outIdx  []uint32
	outVal  []int32
}

// add records one escape-coded point. idx/outVal capacity covers every
// element of the block, so the appends never reallocate.
func (b *encBlock) add(i int, d int32) {
	b.outIdx = append(b.outIdx, uint32(i))
	b.outVal = append(b.outVal, d)
}

// EncodeInto is Encode quantizing into a caller-provided codes slice of
// exactly dims.N() elements (any contents; every element is overwritten),
// so executors processing many chunks can recycle one code buffer instead
// of allocating per chunk. The returned Quantized aliases codes. A nil
// codes allocates, exactly like Encode.
//
// Overflow contract: when any pre-quantized magnitude exceeds the int32
// lattice guard, EncodeInto returns an error and the contents of codes
// (and the would-be outlier set) are unspecified — blocks abandon work at
// the next row boundary once any block has observed an overflow, so
// partial garbage is never interpreted as a result.
func EncodeInto(p *device.Platform, place device.Place, data []float32, dims grid.Dims, eb float64, radius int, codes []uint16) (*Quantized, error) {
	if !dims.Valid() || dims.N() != len(data) {
		return nil, fmt.Errorf("lorenzo: dims %v do not match %d values", dims, len(data))
	}
	if eb <= 0 {
		return nil, fmt.Errorf("lorenzo: error bound must be positive, got %g", eb)
	}
	if codes != nil && len(codes) != dims.N() {
		return nil, fmt.Errorf("lorenzo: codes buffer has %d elements, want %d", len(codes), dims.N())
	}
	if radius <= 0 {
		radius = DefaultRadius
	}
	n := dims.N()
	ebx2r := 1.0 / (2 * eb)
	pool := p.ScratchPool()
	if codes == nil {
		codes = make([]uint16, n)
	}

	// The lattice is pooled scratch — it dies inside this call, so
	// steady-state encoding reuses the same slab chunk after chunk. The
	// fused kernels write every element, so it needs no clearing.
	latticeSlab := pool.GetI32(n, false)
	lattice := latticeSlab.Data

	// Partition the slowest dimension into one block per worker. Each
	// block walks its rows once, fusing pre-quantization with residual
	// emission; the first row/plane of a block needs the lattice of the
	// row/plane before it, which the block re-quantizes into private halo
	// scratch (pre-quantization is deterministic per element, so the
	// duplicate of that one boundary row is exact and race-free).
	slow := dims.SlowExtent()
	nBlocks := p.Workers(place)
	if nBlocks > slow {
		nBlocks = slow
	}
	if nBlocks < 1 {
		nBlocks = 1
	}
	per := (slow + nBlocks - 1) / nBlocks
	blocks := make([]encBlock, 0, nBlocks)
	plane := dims.PlaneElems()
	for lo := 0; lo < slow; lo += per {
		hi := lo + per
		if hi > slow {
			hi = slow
		}
		elems := (hi - lo) * plane
		b := encBlock{lo: lo, hi: hi,
			idxSlab: pool.GetU32(elems, false),
			valSlab: pool.GetI32(elems, false),
		}
		b.outIdx = b.idxSlab.Data[:0]
		b.outVal = b.valSlab.Data[:0]
		blocks = append(blocks, b)
	}

	var overflow atomic.Bool
	r32 := int32(radius)
	p.LaunchBlocks(place, len(blocks), func(blo, bhi int) {
		for bi := blo; bi < bhi; bi++ {
			b := &blocks[bi]
			var ok bool
			switch dims.Rank() {
			case 1:
				ok = encodeBlock1D(data, lattice, codes, b, r32, ebx2r)
			case 2:
				ok = encodeBlock2D(data, lattice, codes, b, dims.X, r32, ebx2r, pool, &overflow)
			default:
				ok = encodeBlock3D(data, lattice, codes, b, dims.X, dims.Y, r32, ebx2r, pool, &overflow)
			}
			if !ok {
				overflow.Store(true)
				return
			}
		}
	})
	release := func() {
		for i := range blocks {
			pool.PutU32(blocks[i].idxSlab)
			pool.PutI32(blocks[i].valSlab)
		}
		pool.PutI32(latticeSlab)
	}
	if overflow.Load() {
		release()
		return nil, fmt.Errorf("lorenzo: error bound %g too tight for data magnitude (lattice overflow); relax the bound", eb)
	}

	// Concatenate the per-block outlier sets in block (= index) order.
	total := 0
	for i := range blocks {
		total += len(blocks[i].outIdx)
	}
	outIdx := make([]uint32, 0, total)
	outVal := make([]int32, 0, total)
	for i := range blocks {
		outIdx = append(outIdx, blocks[i].outIdx...)
		outVal = append(outVal, blocks[i].outVal...)
	}
	release()
	return &Quantized{Codes: codes, OutIdx: outIdx, OutVal: outVal, Radius: radius}, nil
}

// quantRow pre-quantizes one contiguous run of values onto the 2·eb
// lattice through the dispatched SIMD kernel, reporting false on overflow
// (NaN and ±Inf count as overflow in every tier). It is used for the
// private halo rows/planes at block edges and the vector rows' first
// phase; scalar-tier interior quantization is fused into the residual
// kernels below.
func quantRow(data []float32, q []int32, ebx2r float64) bool {
	return dispatch.QuantizeF32(data, q, ebx2r, maxLattice)
}

// minVecRow is the shortest row routed to the two-phase vector kernels; a
// row below one vector group per phase gains nothing over the fused walk.
const minVecRow = 16

// fusedRow1 quantizes and encodes a row with no row above — the first row
// of a 1-D or 2-D field (and the first row of a 3-D field's first plane).
// prev seeds the running chain: 0 at the field origin, the halo value at a
// 1-D block edge. d = q[x] - q[x-1].
func fusedRow1(data []float32, q []int32, codes []uint16, base int, prev int32, r32 int32, ebx2r float64, b *encBlock) bool {
	for x, v := range data {
		t := math.Round(float64(v) * ebx2r)
		if !(t <= maxLattice && t >= -maxLattice) {
			return false
		}
		cur := int32(t)
		q[x] = cur
		d := cur - prev
		prev = cur
		if d > -r32 && d < r32 {
			codes[x] = uint16(d + r32)
		} else {
			codes[x] = 0
			b.add(base+x, d)
		}
	}
	return true
}

// fusedRow2 quantizes and encodes a row with one row above (up): the
// general 2-D row, and — because the terms along a singleton axis vanish —
// also the first row of every 3-D plane when up is the plane behind's
// first row. d = q[i] - q[i-1] - up[x] + up[x-1]; at x = 0 the x-1 terms
// are zero.
func fusedRow2(data []float32, q, up []int32, codes []uint16, base int, r32 int32, ebx2r float64, b *encBlock) bool {
	t := math.Round(float64(data[0]) * ebx2r)
	if !(t <= maxLattice && t >= -maxLattice) {
		return false
	}
	left := int32(t)
	q[0] = left
	upLeft := up[0]
	d := left - upLeft
	if d > -r32 && d < r32 {
		codes[0] = uint16(d + r32)
	} else {
		codes[0] = 0
		b.add(base, d)
	}
	for x := 1; x < len(data); x++ {
		t := math.Round(float64(data[x]) * ebx2r)
		if !(t <= maxLattice && t >= -maxLattice) {
			return false
		}
		cur := int32(t)
		q[x] = cur
		u := up[x]
		d := cur - left - u + upLeft
		left, upLeft = cur, u
		if d > -r32 && d < r32 {
			codes[x] = uint16(d + r32)
		} else {
			codes[x] = 0
			b.add(base+x, d)
		}
	}
	return true
}

// fusedRow3 quantizes and encodes a full 3-D interior row: up is the row
// above in the same plane, back the same row in the plane behind, backUp
// the row above in the plane behind.
// d = q[i] - q[i-1] - up[x] + up[x-1] - back[x] + back[x-1] + backUp[x] - backUp[x-1];
// at x = 0 the x-1 terms are zero.
func fusedRow3(data []float32, q, up, back, backUp []int32, codes []uint16, base int, r32 int32, ebx2r float64, b *encBlock) bool {
	t := math.Round(float64(data[0]) * ebx2r)
	if !(t <= maxLattice && t >= -maxLattice) {
		return false
	}
	left := int32(t)
	q[0] = left
	upLeft, backLeft, backUpLeft := up[0], back[0], backUp[0]
	d := left - upLeft - backLeft + backUpLeft
	if d > -r32 && d < r32 {
		codes[0] = uint16(d + r32)
	} else {
		codes[0] = 0
		b.add(base, d)
	}
	for x := 1; x < len(data); x++ {
		t := math.Round(float64(data[x]) * ebx2r)
		if !(t <= maxLattice && t >= -maxLattice) {
			return false
		}
		cur := int32(t)
		q[x] = cur
		u, bk, bu := up[x], back[x], backUp[x]
		d := cur - left - u + upLeft - bk + backLeft + bu - backUpLeft
		left, upLeft, backLeft, backUpLeft = cur, u, bk, bu
		if d > -r32 && d < r32 {
			codes[x] = uint16(d + r32)
		} else {
			codes[x] = 0
			b.add(base+x, d)
		}
	}
	return true
}

// The two-phase vector rows: quantize the whole row onto the lattice with
// the dispatched SIMD kernel, emit codes from the stored lattice with the
// stencil difference kernel (the x = 0 element, whose x-1 terms come from
// the seed/halo, stays scalar), then re-derive the residual at each escape
// code. In-range residuals always produce a nonzero code (d > -r32 makes
// d+r32 >= 1), so code 0 identifies exactly the points the fused scalar
// rows escape — the two structures emit bit-identical streams.

// vecRow1 is fusedRow1 in two vector phases.
func vecRow1(data []float32, q []int32, codes []uint16, base int, prev int32, r32 int32, ebx2r float64, b *encBlock) bool {
	if !quantRow(data, q, ebx2r) {
		return false
	}
	if d := q[0] - prev; d > -r32 && d < r32 {
		codes[0] = uint16(d + r32)
	} else {
		codes[0] = 0
		b.add(base, d)
	}
	dispatch.DiffCodes1(q, codes[1:], r32)
	for x := 1; x < len(codes); x++ {
		k := dispatch.NextZero(codes[x:])
		if k < 0 {
			break
		}
		x += k
		b.add(base+x, q[x]-q[x-1])
	}
	return true
}

// vecRow2 is fusedRow2 in two vector phases.
func vecRow2(data []float32, q, up []int32, codes []uint16, base int, r32 int32, ebx2r float64, b *encBlock) bool {
	if !quantRow(data, q, ebx2r) {
		return false
	}
	if d := q[0] - up[0]; d > -r32 && d < r32 {
		codes[0] = uint16(d + r32)
	} else {
		codes[0] = 0
		b.add(base, d)
	}
	dispatch.DiffCodes2(q, up, codes[1:], r32)
	for x := 1; x < len(codes); x++ {
		k := dispatch.NextZero(codes[x:])
		if k < 0 {
			break
		}
		x += k
		b.add(base+x, q[x]-q[x-1]-up[x]+up[x-1])
	}
	return true
}

// vecRow3 is fusedRow3 in two vector phases.
func vecRow3(data []float32, q, up, back, backUp []int32, codes []uint16, base int, r32 int32, ebx2r float64, b *encBlock) bool {
	if !quantRow(data, q, ebx2r) {
		return false
	}
	if d := q[0] - up[0] - back[0] + backUp[0]; d > -r32 && d < r32 {
		codes[0] = uint16(d + r32)
	} else {
		codes[0] = 0
		b.add(base, d)
	}
	dispatch.DiffCodes3(q, up, back, backUp, codes[1:], r32)
	for x := 1; x < len(codes); x++ {
		k := dispatch.NextZero(codes[x:])
		if k < 0 {
			break
		}
		x += k
		b.add(base+x, q[x]-q[x-1]-up[x]+up[x-1]-back[x]+back[x-1]+backUp[x]-backUp[x-1])
	}
	return true
}

// row1/row2/row3 route a row to the vector or fused structure. The tier
// choice is uniform across a run (dispatch is fixed at init), so every
// block takes the same path.
func row1(data []float32, q []int32, codes []uint16, base int, prev int32, r32 int32, ebx2r float64, b *encBlock) bool {
	if dispatch.VectorRows() && len(data) >= minVecRow {
		return vecRow1(data, q, codes, base, prev, r32, ebx2r, b)
	}
	return fusedRow1(data, q, codes, base, prev, r32, ebx2r, b)
}

func row2(data []float32, q, up []int32, codes []uint16, base int, r32 int32, ebx2r float64, b *encBlock) bool {
	if dispatch.VectorRows() && len(data) >= minVecRow {
		return vecRow2(data, q, up, codes, base, r32, ebx2r, b)
	}
	return fusedRow2(data, q, up, codes, base, r32, ebx2r, b)
}

func row3(data []float32, q, up, back, backUp []int32, codes []uint16, base int, r32 int32, ebx2r float64, b *encBlock) bool {
	if dispatch.VectorRows() && len(data) >= minVecRow {
		return vecRow3(data, q, up, back, backUp, codes, base, r32, ebx2r, b)
	}
	return fusedRow3(data, q, up, back, backUp, codes, base, r32, ebx2r, b)
}

// encodeBlock1D runs the fused kernel over a 1-D element range (a single
// row: no halo scratch and no interior row boundaries to poll overflow at).
func encodeBlock1D(data []float32, lattice []int32, codes []uint16, b *encBlock, r32 int32, ebx2r float64) bool {
	var prev int32
	if b.lo > 0 {
		// Halo: the element before the block, re-quantized privately.
		t := math.Round(float64(data[b.lo-1]) * ebx2r)
		if !(t <= maxLattice && t >= -maxLattice) {
			return false
		}
		prev = int32(t)
	}
	return row1(data[b.lo:b.hi], lattice[b.lo:b.hi], codes[b.lo:b.hi], b.lo, prev, r32, ebx2r, b)
}

// encodeBlock2D runs the fused kernel over a range of 2-D rows.
func encodeBlock2D(data []float32, lattice []int32, codes []uint16, b *encBlock, nx int, r32 int32, ebx2r float64, pool *device.BufPool, overflow *atomic.Bool) bool {
	var halo *device.Slab[int32]
	up := []int32(nil)
	if b.lo > 0 {
		halo = pool.GetI32(nx, false)
		defer pool.PutI32(halo)
		if !quantRow(data[(b.lo-1)*nx:b.lo*nx], halo.Data, ebx2r) {
			return false
		}
		up = halo.Data
	}
	for y := b.lo; y < b.hi; y++ {
		if overflow.Load() {
			return false // another block overflowed; abandon at the row edge
		}
		base := y * nx
		row := lattice[base : base+nx]
		if y == 0 {
			if !row1(data[base:base+nx], row, codes[base:base+nx], base, 0, r32, ebx2r, b) {
				return false
			}
		} else if !row2(data[base:base+nx], row, up, codes[base:base+nx], base, r32, ebx2r, b) {
			return false
		}
		up = row
	}
	return true
}

// encodeBlock3D runs the fused kernel over a range of z-planes.
func encodeBlock3D(data []float32, lattice []int32, codes []uint16, b *encBlock, nx, ny int, r32 int32, ebx2r float64, pool *device.BufPool, overflow *atomic.Bool) bool {
	nxy := nx * ny
	var halo *device.Slab[int32]
	back := []int32(nil) // lattice of plane z-1
	if b.lo > 0 {
		halo = pool.GetI32(nxy, false)
		defer pool.PutI32(halo)
		if !quantRow(data[(b.lo-1)*nxy:b.lo*nxy], halo.Data, ebx2r) {
			return false
		}
		back = halo.Data
	}
	for z := b.lo; z < b.hi; z++ {
		pb := z * nxy
		cur := lattice[pb : pb+nxy]
		for y := 0; y < ny; y++ {
			if overflow.Load() {
				return false
			}
			base := pb + y*nx
			row := lattice[base : base+nx]
			dr := data[base : base+nx]
			cr := codes[base : base+nx]
			switch {
			case z == 0 && y == 0:
				if !row1(dr, row, cr, base, 0, r32, ebx2r, b) {
					return false
				}
			case z == 0:
				// First plane: the z-1 terms vanish, leaving the 2-D stencil.
				if !row2(dr, row, cur[(y-1)*nx:y*nx], cr, base, r32, ebx2r, b) {
					return false
				}
			case y == 0:
				// First row of a plane: the y-1 terms vanish, so the 2-D
				// stencil applies against the plane behind's first row.
				if !row2(dr, row, back[:nx], cr, base, r32, ebx2r, b) {
					return false
				}
			default:
				if !row3(dr, row, cur[(y-1)*nx:y*nx], back[y*nx:(y+1)*nx], back[(y-1)*nx:y*nx], cr, base, r32, ebx2r, b) {
					return false
				}
			}
		}
		back = cur
	}
	return true
}

// Decode reconstructs the field from a Quantized stream. The result is
// within eb of the original input everywhere.
func Decode(p *device.Platform, place device.Place, q *Quantized, dims grid.Dims, eb float64) ([]float32, error) {
	out := make([]float32, dims.N())
	if err := DecodeInto(p, place, q, dims, eb, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto is Decode reconstructing into a caller-provided buffer of
// exactly dims.N() elements, so executors can scatter chunk results
// straight into the assembled output field instead of copying through a
// per-chunk allocation.
func DecodeInto(p *device.Platform, place device.Place, q *Quantized, dims grid.Dims, eb float64, out []float32) error {
	n := dims.N()
	if len(out) != n {
		return fmt.Errorf("lorenzo: output buffer has %d elements, want %d", len(out), n)
	}
	if len(q.Codes) != n {
		return fmt.Errorf("lorenzo: %d codes for dims %v (%d values)", len(q.Codes), dims, n)
	}
	if q.Radius <= 0 {
		return fmt.Errorf("lorenzo: invalid radius %d", q.Radius)
	}
	if len(q.OutIdx) != len(q.OutVal) {
		return fmt.Errorf("lorenzo: outlier index/value length mismatch %d vs %d", len(q.OutIdx), len(q.OutVal))
	}
	r32 := int32(q.Radius)

	// Residuals from codes; outlier escapes filled by scatter. Pooled:
	// the lattice is dead once the float field is materialized. Both
	// branches store, so the slab needs no pre-clearing.
	pool := p.ScratchPool()
	latticeSlab := pool.GetI32(n, false)
	lattice := latticeSlab.Data
	codes := q.Codes
	p.LaunchGrid(place, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if c := codes[i]; c != 0 {
				lattice[i] = int32(c) - r32
			} else {
				lattice[i] = 0
			}
		}
	})
	for j, idx := range q.OutIdx {
		if int(idx) >= n {
			pool.PutI32(latticeSlab)
			return fmt.Errorf("lorenzo: outlier index %d out of range %d", idx, n)
		}
		lattice[idx] = q.OutVal[j]
	}

	// Invert the separable difference with per-dimension prefix sums,
	// parallel across the independent lines of each sweep.
	prefixSums(p, place, lattice, dims)

	scale := 2 * eb
	p.LaunchGrid(place, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float32(float64(lattice[i]) * scale)
		}
	})
	pool.PutI32(latticeSlab)
	return nil
}

// addSpan accumulates src into dst element-wise, the unit-stride inner
// kernel all y- and z-sweeps reduce to.
func addSpan(dst, src []int32) {
	_ = src[len(dst)-1]
	for i := range dst {
		dst[i] += src[i]
	}
}

// prefixSums applies cumulative sums along x, then y, then z in place.
// Every sweep is expressed over unit-stride row operations: the y-sweep
// adds each row to the row below it within a plane, and the z-sweep adds
// each plane to the plane behind it, so the lattice is always walked in
// storage order instead of striding per element through Idx arithmetic.
// Integer addition is associative, so the sums — and therefore the
// reconstruction — are identical to the per-line walks they replace.
func prefixSums(p *device.Platform, place device.Place, q []int32, dims grid.Dims) {
	nx, ny, nz := dims.X, dims.Y, dims.Z
	// Along x: one independent line per (y, z).
	p.LaunchGrid(place, ny*nz, func(lo, hi int) {
		for l := lo; l < hi; l++ {
			base := l * nx
			var acc int32
			for x := 0; x < nx; x++ {
				acc += q[base+x]
				q[base+x] = acc
			}
		}
	})
	if dims.Rank() >= 2 {
		// Along y: planes are independent; within a plane, row y
		// accumulates row y-1 with a unit-stride add.
		nxy := nx * ny
		p.LaunchBlocks(place, nz, func(zlo, zhi int) {
			for z := zlo; z < zhi; z++ {
				plane := q[z*nxy : (z+1)*nxy]
				for y := 1; y < ny; y++ {
					addSpan(plane[y*nx:(y+1)*nx], plane[(y-1)*nx:y*nx])
				}
			}
		})
	}
	if dims.Rank() >= 3 {
		// Along z: plane z accumulates plane z-1, parallel within each
		// plane, sequential across the dependent planes.
		nxy := nx * ny
		for z := 1; z < nz; z++ {
			cur := q[z*nxy : (z+1)*nxy]
			prev := q[(z-1)*nxy : z*nxy]
			p.LaunchGrid(place, nxy, func(lo, hi int) {
				addSpan(cur[lo:hi], prev[lo:hi])
			})
		}
	}
}
