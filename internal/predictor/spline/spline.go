// Package spline implements the multi-level interpolation predictor
// (G-Interp) used by FZMod-Quality, reproducing the cuSZ-i design the
// paper swaps in "for better data prediction" (§3.3). The same engine, with
// per-level auto-tuned interpolants, powers the SZ3 baseline.
//
// The field is refined level by level: anchors on the coarse 2^maxLevel
// lattice are stored verbatim, then each level halves the lattice spacing,
// predicting the new points by cubic (or linear) interpolation along one
// dimension at a time from already-reconstructed values. Residuals are
// quantized onto the 2·eb lattice with an outlier escape, so the bound is
// strict: every reconstructed value is within eb of its input (up to
// float32 output rounding, as documented on package lorenzo).
//
// Encoder and decoder share one traversal routine, which guarantees they
// enumerate points in the same phases with the same neighbor availability —
// the property interpolation-based compressors live or die by.
package spline

import (
	"fmt"
	"math"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/kernels"
)

// DefaultMaxLevel gives anchors every 2^4 = 16 points per dimension.
const DefaultMaxLevel = 4

// DefaultRadius matches the Lorenzo module so all primary encoders share
// one code alphabet.
const DefaultRadius = 512

// InterpMode selects the interpolant for a level/dimension phase.
type InterpMode int

const (
	// Cubic uses the 4-point interpolant (-1, 9, 9, -1)/16 where all four
	// neighbors exist, falling back to linear then nearest at borders.
	Cubic InterpMode = iota
	// Linear always uses the 2-point average (nearest at borders).
	Linear
	// Auto samples each phase and picks whichever of cubic/linear has the
	// lower squared error — the SZ3-style per-level tuning.
	Auto
)

// Config controls the predictor.
type Config struct {
	MaxLevel int        // anchor lattice is 2^MaxLevel; ≤0 → DefaultMaxLevel
	Radius   int        // quantization code radius; ≤0 → DefaultRadius
	Mode     InterpMode // interpolant selection
	// TuneOrder enables per-level dimension-order auto-tuning (the
	// cuSZ-i "multi-component" tuning): at each level the dimension that
	// interpolates worst is processed first, so the best-predicting
	// dimension covers the phase with the most points. The chosen orders
	// are recorded in the stream.
	TuneOrder bool
}

// Quantized is the encoder output: codes share the Lorenzo escape
// convention (0 = outlier), anchors and outliers carry exact float32
// values, and Choices records the per-phase interpolant so the decoder
// replays auto-tuned decisions.
type Quantized struct {
	Codes    []uint16
	Anchors  []float32
	OutIdx   []uint32
	OutVal   []float32
	Choices  []byte // one per (level, dim) phase: 1 = cubic, 0 = linear
	Orders   []byte // one per level: index into the dimension permutations
	Radius   int
	MaxLevel int
}

// OutlierCount returns the number of escape-coded points.
func (q *Quantized) OutlierCount() int { return len(q.OutIdx) }

// Encode predicts and quantizes data with absolute bound eb.
func Encode(p *device.Platform, place device.Place, data []float32, dims grid.Dims, eb float64, cfg Config) (*Quantized, error) {
	if !dims.Valid() || dims.N() != len(data) {
		return nil, fmt.Errorf("spline: dims %v do not match %d values", dims, len(data))
	}
	if eb <= 0 {
		return nil, fmt.Errorf("spline: error bound must be positive, got %g", eb)
	}
	maxLevel, radius := cfg.MaxLevel, cfg.Radius
	if maxLevel <= 0 {
		maxLevel = DefaultMaxLevel
	}
	if radius <= 0 {
		radius = DefaultRadius
	}
	n := dims.N()
	work := make([]float64, n)
	codes := make([]uint16, n)
	flags := make([]uint32, n)

	// Anchors: exact values on the coarse lattice.
	anchors := collectAnchors(dims, maxLevel, func(i int) float32 {
		v := data[i]
		work[i] = float64(v)
		codes[i] = uint16(radius)
		return v
	})

	choices := make([]byte, 3*maxLevel)
	orders := make([]byte, maxLevel)
	r32 := int32(radius)

	traverse(p, place, dims, maxLevel, work,
		func(level int, s, h int) byte {
			o := byte(0)
			if cfg.TuneOrder {
				o = tuneOrder(data, work, dims, s, h)
			}
			orders[level-1] = o
			return o
		},
		func(level, dim int, ph phase) byte {
			c := resolveMode(cfg.Mode, data, work, dims, ph)
			choices[3*(level-1)+dim] = c
			return c
		},
		func(i int, pred float64, level int) {
			ebL := LevelEB(eb, level)
			err := float64(data[i]) - pred
			code := int32(math.Round(err / (2 * ebL)))
			if code > -r32 && code < r32 {
				codes[i] = uint16(code + r32)
				work[i] = pred + float64(code)*2*ebL
			} else {
				flags[i] = 1 // codes[i] stays 0: outlier escape
				work[i] = float64(data[i])
			}
		})

	outIdx := kernels.CompactU32(p, place, flags)
	outVal := make([]float32, len(outIdx))
	p.LaunchGrid(place, len(outIdx), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			outVal[j] = data[outIdx[j]]
		}
	})
	return &Quantized{
		Codes: codes, Anchors: anchors, OutIdx: outIdx, OutVal: outVal,
		Choices: choices, Orders: orders, Radius: radius, MaxLevel: maxLevel,
	}, nil
}

// Decode reconstructs the field from a Quantized stream.
func Decode(p *device.Platform, place device.Place, q *Quantized, dims grid.Dims, eb float64) ([]float32, error) {
	n := dims.N()
	if len(q.Codes) != n {
		return nil, fmt.Errorf("spline: %d codes for dims %v (%d values)", len(q.Codes), dims, n)
	}
	if q.Radius <= 0 || q.MaxLevel <= 0 {
		return nil, fmt.Errorf("spline: invalid radius %d / maxLevel %d", q.Radius, q.MaxLevel)
	}
	if len(q.Choices) < 3*q.MaxLevel {
		return nil, fmt.Errorf("spline: %d interpolant choices, want %d", len(q.Choices), 3*q.MaxLevel)
	}
	if len(q.Orders) < q.MaxLevel {
		return nil, fmt.Errorf("spline: %d dimension orders, want %d", len(q.Orders), q.MaxLevel)
	}
	for _, o := range q.Orders {
		if o >= 6 {
			return nil, fmt.Errorf("spline: invalid dimension order %d", o)
		}
	}
	if len(q.OutIdx) != len(q.OutVal) {
		return nil, fmt.Errorf("spline: outlier index/value length mismatch")
	}
	work := make([]float64, n)

	// Anchors first, in the encoder's deterministic order.
	ai := 0
	wantAnchors := countAnchors(dims, q.MaxLevel)
	if len(q.Anchors) != wantAnchors {
		return nil, fmt.Errorf("spline: %d anchors, want %d", len(q.Anchors), wantAnchors)
	}
	collectAnchors(dims, q.MaxLevel, func(i int) float32 {
		work[i] = float64(q.Anchors[ai])
		ai++
		return 0
	})

	outliers := make(map[uint32]float64, len(q.OutIdx))
	for j, idx := range q.OutIdx {
		if int(idx) >= n {
			return nil, fmt.Errorf("spline: outlier index %d out of range %d", idx, n)
		}
		outliers[idx] = float64(q.OutVal[j])
	}

	r32 := int32(q.Radius)
	traverse(p, place, dims, q.MaxLevel, work,
		func(level int, s, h int) byte { return q.Orders[level-1] },
		func(level, dim int, ph phase) byte { return q.Choices[3*(level-1)+dim] },
		func(i int, pred float64, level int) {
			c := q.Codes[i]
			if c == 0 {
				work[i] = outliers[uint32(i)]
				return
			}
			work[i] = pred + float64(int32(c)-r32)*2*LevelEB(eb, level)
		})

	out := make([]float32, n)
	p.LaunchGrid(place, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float32(work[i])
		}
	})
	return out, nil
}

// phase describes one (level, dim) traversal step for the tuner.
type phase struct {
	dims    grid.Dims
	dim     int
	s, h    int
	step    int             // linear-index stride of one unit along dim
	length  int             // extent along dim
	lineIdx func(l int) int // base linear index of line l
	nLines  int
	starts  []int // coordinates along dim visited in this phase
}

// traverse enumerates the multi-level refinement. For each level from
// coarse to fine and each dimension x→y→z, it calls choose once to fix the
// interpolant, then visits every point of the phase in parallel across
// lines, passing the prediction computed from work. visit must write the
// reconstructed value into work[i] so later phases see it.
// LevelEB returns the tightened error bound used at a refinement level:
// coarse-level reconstructions feed every finer prediction, so their errors
// are held 2× (level 2) or 4× (level ≥ 3) tighter than the user bound, the
// multi-level error control cuSZ-i applies. The finest level (1), which
// codes half of all points per dimension, uses the full bound.
func LevelEB(eb float64, level int) float64 {
	switch {
	case level <= 1:
		return eb
	case level == 2:
		return eb / 2
	default:
		return eb / 4
	}
}

// perms enumerates the dimension processing orders a level may use; the
// byte stored per level indexes this table. Dimensions ≥ rank are skipped
// at traversal time, so the table covers every rank.
var perms = [6][3]int{
	{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
}

func traverse(p *device.Platform, place device.Place, dims grid.Dims, maxLevel int, work []float64,
	orderOf func(level int, s, h int) byte,
	choose func(level, dim int, ph phase) byte, visit func(i int, pred float64, level int)) {

	rank := dims.Rank()
	ext := [3]int{dims.X, dims.Y, dims.Z}
	steps := [3]int{1, dims.X, dims.X * dims.Y}

	for level := maxLevel; level >= 1; level-- {
		s := 1 << uint(level)
		h := s >> 1
		order := perms[orderOf(level, s, h)%6]
		var processed [3]bool
		for _, dim := range order {
			if dim >= rank {
				continue
			}
			ph := buildPhase(dims, dim, s, h, ext, steps, processed)
			processed[dim] = true
			if len(ph.starts) == 0 || ph.nLines == 0 {
				continue
			}
			mode := choose(level, dim, ph)
			cubic := mode != 0
			lvl := level
			p.LaunchGrid(place, ph.nLines, func(lo, hi int) {
				for l := lo; l < hi; l++ {
					base := ph.lineIdx(l)
					for _, c := range ph.starts {
						i := base + c*ph.step
						visit(i, predict(work, i, c, ph.length, ph.step, h, cubic), lvl)
					}
				}
			})
		}
	}
}

// tuneOrder samples the interpolation error along each dimension at the
// given stride and returns the permutation index that processes dimensions
// from worst to best, so the most accurate dimension predicts the
// most-populated final phase.
func tuneOrder(data []float32, work []float64, dims grid.Dims, s, h int) byte {
	rank := dims.Rank()
	if rank == 1 {
		return 0
	}
	ext := [3]int{dims.X, dims.Y, dims.Z}
	steps := [3]int{1, dims.X, dims.X * dims.Y}
	var sse [3]float64
	for d := 0; d < rank; d++ {
		// Probe the phase dimension d would have if processed first.
		ph := buildPhase(dims, d, s, h, ext, steps, [3]bool{})
		if len(ph.starts) == 0 || ph.nLines == 0 {
			sse[d] = 0
			continue
		}
		strideL := ph.nLines/64 + 1
		samples := 0
		for l := 0; l < ph.nLines && samples < 512; l += strideL {
			base := ph.lineIdx(l)
			for _, c := range ph.starts {
				i := base + c*ph.step
				pr := predict(work, i, c, ph.length, ph.step, h, true)
				dd := float64(data[i]) - pr
				sse[d] += dd * dd
				samples++
				if samples >= 512 {
					break
				}
			}
		}
		if samples > 0 {
			sse[d] /= float64(samples)
		}
	}
	// Find the permutation ordering dims by descending error (worst
	// first). Stable for ties via the permutation table order.
	best := 0
	for pi, pm := range perms {
		ok := true
		prev := math.Inf(1)
		for _, d := range pm {
			if d >= rank {
				continue
			}
			if sse[d] > prev {
				ok = false
				break
			}
			prev = sse[d]
		}
		if ok {
			best = pi
			break
		}
	}
	return byte(best)
}

// buildPhase computes the point pattern for (dim, stride): the coordinate
// along dim runs over odd multiples of h; dims already processed this level
// run over multiples of h, unprocessed dims over multiples of s.
func buildPhase(dims grid.Dims, dim, s, h int, ext, steps [3]int, processed [3]bool) phase {
	var starts []int
	for c := h; c < ext[dim]; c += s {
		starts = append(starts, c)
	}
	// The two other dimensions (in x,y,z order) form the line grid.
	var od [2]int // other dims
	switch dim {
	case 0:
		od = [2]int{1, 2}
	case 1:
		od = [2]int{0, 2}
	default:
		od = [2]int{0, 1}
	}
	stride := func(other int) int {
		if processed[other] {
			return h // already processed this level
		}
		return s // still on the coarse lattice
	}
	s0, s1 := stride(od[0]), stride(od[1])
	n0 := ceilDiv(ext[od[0]], s0)
	n1 := ceilDiv(ext[od[1]], s1)
	return phase{
		dims: dims, dim: dim, s: s, h: h,
		step:   steps[dim],
		length: ext[dim],
		nLines: n0 * n1,
		starts: starts,
		lineIdx: func(l int) int {
			c0 := (l % n0) * s0
			c1 := (l / n0) * s1
			return c0*steps[od[0]] + c1*steps[od[1]]
		},
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// predict interpolates the value at coordinate c along a line of the given
// length, reading reconstructed neighbors at ±h and ±3h.
func predict(work []float64, i, c, length, step, h int, cubic bool) float64 {
	a := work[i-h*step] // c-h ≥ 0 by construction
	if c+h >= length {
		return a
	}
	b := work[i+h*step]
	if cubic && c-3*h >= 0 && c+3*h < length {
		return (-work[i-3*h*step] + 9*a + 9*b - work[i+3*h*step]) / 16
	}
	return (a + b) / 2
}

// resolveMode implements Auto by sampling the phase and comparing summed
// squared error of cubic vs linear predictions against the true data.
func resolveMode(m InterpMode, data []float32, work []float64, dims grid.Dims, ph phase) byte {
	switch m {
	case Cubic:
		return 1
	case Linear:
		return 0
	}
	const maxSamples = 1024
	total := ph.nLines * len(ph.starts)
	if total == 0 {
		return 1
	}
	strideL := ph.nLines/64 + 1
	var sseCubic, sseLinear float64
	samples := 0
	for l := 0; l < ph.nLines && samples < maxSamples; l += strideL {
		base := ph.lineIdx(l)
		for _, c := range ph.starts {
			i := base + c*ph.step
			pc := predict(work, i, c, ph.length, ph.step, ph.h, true)
			pl := predict(work, i, c, ph.length, ph.step, ph.h, false)
			d := float64(data[i])
			sseCubic += (d - pc) * (d - pc)
			sseLinear += (d - pl) * (d - pl)
			samples++
			if samples >= maxSamples {
				break
			}
		}
	}
	if sseLinear < sseCubic {
		return 0
	}
	return 1
}

// collectAnchors walks the anchor lattice in z, y, x order, calling get for
// each anchor index, and returns the gathered values.
func collectAnchors(dims grid.Dims, maxLevel int, get func(i int) float32) []float32 {
	s := 1 << uint(maxLevel)
	out := make([]float32, 0, countAnchors(dims, maxLevel))
	for z := 0; z < dims.Z; z += s {
		for y := 0; y < dims.Y; y += s {
			for x := 0; x < dims.X; x += s {
				out = append(out, get(dims.Idx(x, y, z)))
			}
		}
	}
	return out
}

func countAnchors(dims grid.Dims, maxLevel int) int {
	s := 1 << uint(maxLevel)
	return ceilDiv(dims.X, s) * ceilDiv(dims.Y, s) * ceilDiv(dims.Z, s)
}
