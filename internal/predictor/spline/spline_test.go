package spline

import (
	"math"
	"math/rand"
	"testing"

	"fzmod/internal/device"
	"fzmod/internal/grid"
)

var tp = device.NewTestPlatform()

func maxAbsErr(a, b []float32) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m {
			m = d
		}
	}
	return m
}

func boundTol(data []float32, eb float64) float64 {
	var m float64
	for _, v := range data {
		if a := math.Abs(float64(v)); a > m {
			m = a
		}
	}
	return eb + m/(1<<23) + 1e-12
}

func smoothField(dims grid.Dims, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	p1, p2, p3 := rng.Float64(), rng.Float64(), rng.Float64()
	out := make([]float32, dims.N())
	for z := 0; z < dims.Z; z++ {
		for y := 0; y < dims.Y; y++ {
			for x := 0; x < dims.X; x++ {
				v := 3*math.Sin(0.05*float64(x)+p1)*math.Cos(0.04*float64(y)+p2) +
					math.Sin(0.03*float64(z)+p3)
				out[dims.Idx(x, y, z)] = float32(v)
			}
		}
	}
	return out
}

func roundtrip(t *testing.T, data []float32, dims grid.Dims, eb float64, cfg Config) *Quantized {
	t.Helper()
	q, err := Encode(tp, device.Accel, data, dims, eb, cfg)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(tp, device.Accel, q, dims, eb)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if e := maxAbsErr(data, got); e > boundTol(data, eb) {
		t.Fatalf("dims %v eb %g: max error %g exceeds bound", dims, eb, e)
	}
	return q
}

func TestRoundtrip1D(t *testing.T) {
	dims := grid.D1(3000)
	data := make([]float32, dims.N())
	for i := range data {
		data[i] = float32(math.Sin(float64(i) * 0.02))
	}
	roundtrip(t, data, dims, 1e-3, Config{})
}

func TestRoundtrip2D(t *testing.T) {
	dims := grid.D2(100, 90)
	roundtrip(t, smoothField(dims, 1), dims, 1e-3, Config{})
}

func TestRoundtrip3D(t *testing.T) {
	dims := grid.D3(48, 40, 32)
	roundtrip(t, smoothField(dims, 2), dims, 1e-4, Config{})
}

func TestRoundtripAllModes(t *testing.T) {
	dims := grid.D3(33, 29, 17)
	data := smoothField(dims, 3)
	for _, mode := range []InterpMode{Cubic, Linear, Auto} {
		roundtrip(t, data, dims, 1e-3, Config{Mode: mode})
	}
}

func TestRoundtripVariousLevels(t *testing.T) {
	dims := grid.D2(70, 50)
	data := smoothField(dims, 4)
	for _, ml := range []int{1, 2, 3, 5, 6} {
		q := roundtrip(t, data, dims, 1e-3, Config{MaxLevel: ml})
		if q.MaxLevel != ml {
			t.Errorf("MaxLevel = %d, want %d", q.MaxLevel, ml)
		}
	}
}

func TestHigherAccuracyThanLorenzoOnSmoothData(t *testing.T) {
	// The paper's reason for FZMod-Quality: interpolation predicts smooth
	// fields better, concentrating codes near the center. Verify code
	// concentration exceeds a Lorenzo-like baseline expectation.
	dims := grid.D3(64, 64, 32)
	data := smoothField(dims, 5)
	q := roundtrip(t, data, dims, 1e-4, Config{})
	exact := 0
	for _, c := range q.Codes {
		if c == uint16(q.Radius) {
			exact++
		}
	}
	if frac := float64(exact) / float64(len(q.Codes)); frac < 0.3 {
		t.Errorf("only %.2f of codes are exact-prediction; interpolation quality suspect", frac)
	}
}

func TestAnchorsExact(t *testing.T) {
	dims := grid.D2(40, 40)
	data := smoothField(dims, 6)
	q, err := Encode(tp, device.Accel, data, dims, 1e-3, Config{MaxLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(tp, device.Accel, q, dims, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	s := 8
	for y := 0; y < dims.Y; y += s {
		for x := 0; x < dims.X; x += s {
			i := dims.Idx(x, y, 0)
			if got[i] != data[i] {
				t.Fatalf("anchor (%d,%d) not exact: %v vs %v", x, y, got[i], data[i])
			}
		}
	}
}

func TestOutliersOnRoughData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := grid.D1(10000)
	data := make([]float32, dims.N())
	for i := range data {
		data[i] = float32(rng.NormFloat64() * 50)
	}
	q := roundtrip(t, data, dims, 1e-4, Config{})
	if q.OutlierCount() == 0 {
		t.Error("white noise should force outliers")
	}
}

func TestAutoModeRecordsChoices(t *testing.T) {
	dims := grid.D2(80, 80)
	data := smoothField(dims, 8)
	q, err := Encode(tp, device.Accel, data, dims, 1e-3, Config{Mode: Auto})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Choices) != 3*q.MaxLevel {
		t.Fatalf("choices len = %d, want %d", len(q.Choices), 3*q.MaxLevel)
	}
	for _, c := range q.Choices {
		if c > 1 {
			t.Fatalf("choice byte %d not in {0,1}", c)
		}
	}
}

func TestLinearVsCubicDiffer(t *testing.T) {
	// On a cubic polynomial field, cubic interpolation should produce
	// more exact predictions than linear.
	dims := grid.D1(2048)
	data := make([]float32, dims.N())
	for i := range data {
		x := float64(i) / 100
		data[i] = float32(0.01*x*x*x - 0.3*x*x + x)
	}
	qc, err := Encode(tp, device.Accel, data, dims, 1e-5, Config{Mode: Cubic})
	if err != nil {
		t.Fatal(err)
	}
	ql, err := Encode(tp, device.Accel, data, dims, 1e-5, Config{Mode: Linear})
	if err != nil {
		t.Fatal(err)
	}
	exact := func(q *Quantized) int {
		n := 0
		for _, c := range q.Codes {
			if c == uint16(q.Radius) {
				n++
			}
		}
		return n
	}
	if exact(qc) <= exact(ql) {
		t.Errorf("cubic exact=%d should beat linear exact=%d on cubic data", exact(qc), exact(ql))
	}
}

func TestEncodeErrors(t *testing.T) {
	data := make([]float32, 8)
	if _, err := Encode(tp, device.Accel, data, grid.D1(9), 1e-3, Config{}); err == nil {
		t.Error("dims mismatch should fail")
	}
	if _, err := Encode(tp, device.Accel, data, grid.D1(8), -1e-3, Config{}); err == nil {
		t.Error("negative eb should fail")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(tp, device.Accel, &Quantized{Codes: make([]uint16, 3)}, grid.D1(4), 1e-3); err == nil {
		t.Error("code length mismatch should fail")
	}
	q := &Quantized{Codes: make([]uint16, 4), Radius: 512, MaxLevel: 2, Choices: make([]byte, 6)}
	if _, err := Decode(tp, device.Accel, q, grid.D1(4), 1e-3); err == nil {
		t.Error("anchor count mismatch should fail")
	}
	q2 := &Quantized{Codes: make([]uint16, 4), Radius: 0, MaxLevel: 2}
	if _, err := Decode(tp, device.Accel, q2, grid.D1(4), 1e-3); err == nil {
		t.Error("invalid radius should fail")
	}
	q3 := &Quantized{Codes: make([]uint16, 4), Radius: 512, MaxLevel: 2, Choices: make([]byte, 1)}
	if _, err := Decode(tp, device.Accel, q3, grid.D1(4), 1e-3); err == nil {
		t.Error("short choices should fail")
	}
}

func TestOddDims(t *testing.T) {
	dims := grid.D3(31, 19, 7)
	roundtrip(t, smoothField(dims, 9), dims, 1e-3, Config{})
}

func TestTinyField(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		dims := grid.D1(n)
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(i) * 1.5
		}
		roundtrip(t, data, dims, 1e-3, Config{})
	}
}

func TestPropertyBoundHolds(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(200 + trial)))
		dims := grid.D3(4+rng.Intn(30), 4+rng.Intn(30), 1+rng.Intn(8))
		data := make([]float32, dims.N())
		acc := float32(0)
		for i := range data {
			acc += float32(rng.NormFloat64() * 0.05)
			data[i] = acc
		}
		eb := math.Pow(10, -1-3*rng.Float64())
		mode := []InterpMode{Cubic, Linear, Auto}[trial%3]
		roundtrip(t, data, dims, eb, Config{Mode: mode, MaxLevel: 1 + rng.Intn(5)})
	}
}

func TestDeterministic(t *testing.T) {
	dims := grid.D2(60, 44)
	data := smoothField(dims, 10)
	q1, _ := Encode(tp, device.Accel, data, dims, 1e-3, Config{Mode: Auto})
	q2, _ := Encode(tp, device.Accel, data, dims, 1e-3, Config{Mode: Auto})
	if len(q1.Codes) != len(q2.Codes) || len(q1.OutIdx) != len(q2.OutIdx) {
		t.Fatal("nondeterministic encode")
	}
	for i := range q1.Codes {
		if q1.Codes[i] != q2.Codes[i] {
			t.Fatalf("nondeterministic code at %d", i)
		}
	}
}

func TestDecodeRejectsBadOrders(t *testing.T) {
	dims := grid.D2(20, 20)
	data := smoothField(dims, 30)
	q, err := Encode(tp, device.Accel, data, dims, 1e-3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad := *q
	bad.Orders = []byte{9, 0, 0, 0} // invalid permutation index
	if _, err := Decode(tp, device.Accel, &bad, dims, 1e-3); err == nil {
		t.Error("invalid order byte should fail")
	}
	short := *q
	short.Orders = q.Orders[:1]
	if _, err := Decode(tp, device.Accel, &short, dims, 1e-3); err == nil {
		t.Error("short orders should fail")
	}
}

func TestOrderTuningPrefersGoodDimensionLast(t *testing.T) {
	// Field smooth along x, rough along y: tuning should schedule y (the
	// bad dimension) before x so x predicts the final, largest phase.
	dims := grid.D2(64, 64)
	rng := rand.New(rand.NewSource(31))
	data := make([]float32, dims.N())
	rowOffsets := make([]float32, dims.Y)
	for y := range rowOffsets {
		rowOffsets[y] = float32(rng.NormFloat64() * 10)
	}
	for y := 0; y < dims.Y; y++ {
		for x := 0; x < dims.X; x++ {
			data[dims.Idx(x, y, 0)] = rowOffsets[y] + float32(math.Sin(0.05*float64(x)))
		}
	}
	qt, err := Encode(tp, device.Accel, data, dims, 1e-4, Config{TuneOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	qf, err := Encode(tp, device.Accel, data, dims, 1e-4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	exact := func(q *Quantized) int {
		n := 0
		for _, c := range q.Codes {
			if c == uint16(q.Radius) {
				n++
			}
		}
		return n
	}
	if exact(qt) <= exact(qf) {
		t.Errorf("order tuning should raise exact predictions: tuned %d vs fixed %d", exact(qt), exact(qf))
	}
	// And the tuned stream must still roundtrip within bound.
	got, err := Decode(tp, device.Accel, qt, dims, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxAbsErr(data, got); e > boundTol(data, 1e-4) {
		t.Errorf("tuned roundtrip error %g", e)
	}
}

func TestLevelEB(t *testing.T) {
	if LevelEB(1.0, 1) != 1.0 || LevelEB(1.0, 2) != 0.5 || LevelEB(1.0, 3) != 0.25 || LevelEB(1.0, 5) != 0.25 {
		t.Error("LevelEB schedule")
	}
	if LevelEB(1.0, 0) != 1.0 {
		t.Error("LevelEB floor")
	}
}
