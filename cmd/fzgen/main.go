// Command fzgen writes the synthetic SDRBench stand-in datasets to disk as
// raw little-endian float32 files, for use with cmd/fzmod or external
// tools.
//
// Usage:
//
//	fzgen -dataset cesm|hacc|hurr|nyx [-dims 128x128x64] [-seed 42] [-o out.f32]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fzmod/internal/device"
	"fzmod/internal/grid"
	"fzmod/internal/sdrbench"
)

func main() {
	var (
		dsArg   = flag.String("dataset", "cesm", "dataset: cesm, hacc, hurr, nyx")
		dimsArg = flag.String("dims", "", "override dims, e.g. 128x128x64 (default: dataset default)")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("o", "", "output file (default <dataset>.f32)")
	)
	flag.Parse()

	if err := run(*dsArg, *dimsArg, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "fzgen:", err)
		os.Exit(1)
	}
}

func run(dsArg, dimsArg string, seed int64, out string) error {
	var ds sdrbench.Dataset
	switch strings.ToLower(dsArg) {
	case "cesm":
		ds = sdrbench.CESM
	case "hacc":
		ds = sdrbench.HACC
	case "hurr":
		ds = sdrbench.HURR
	case "nyx":
		ds = sdrbench.NYX
	default:
		return fmt.Errorf("unknown dataset %q", dsArg)
	}
	dims := sdrbench.DefaultDims(ds)
	if dimsArg != "" {
		var err error
		dims, err = parseDims(dimsArg)
		if err != nil {
			return err
		}
	}
	if out == "" {
		out = strings.ToLower(dsArg) + ".f32"
	}
	data := sdrbench.Generate(ds, dims, seed)
	if err := os.WriteFile(out, device.F32Bytes(data), 0o644); err != nil {
		return err
	}
	fmt.Printf("%v %v (%d values, %d bytes) → %s\n", ds, dims, dims.N(), 4*dims.N(), out)
	return nil
}

func parseDims(s string) (grid.Dims, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) < 1 || len(parts) > 3 {
		return grid.Dims{}, fmt.Errorf("bad -dims %q", s)
	}
	vals := [3]int{1, 1, 1}
	for i, ps := range parts {
		v, err := strconv.Atoi(ps)
		if err != nil || v <= 0 {
			return grid.Dims{}, fmt.Errorf("bad -dims component %q", ps)
		}
		vals[i] = v
	}
	return grid.Dims{X: vals[0], Y: vals[1], Z: vals[2]}, nil
}
