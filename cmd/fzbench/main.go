// Command fzbench regenerates the paper's evaluation (§4): Table 3,
// Figures 1–4, and the design-choice ablations called out in DESIGN.md.
//
// Usage:
//
//	fzbench -exp table3|fig1|fig2|fig3|fig4|stf|hist|secondary|fusion|chunked|stream|all [-large]
//	fzbench -exp chunked -json BENCH_new.json [-baseline BENCH_chunked.json] [-alloc-tol 0.2] [-gbs-tol 0.35]
//	fzbench -exp stream  -json BENCH_stream_new.json -baseline BENCH_chunked.json
//
// Small-scale workloads are the default so a full sweep finishes quickly;
// -large switches to the harness default dimensions (scaled from the
// paper's Table 2). -json writes the chunked or stream experiment's
// machine-readable report; with -baseline the run exits nonzero when
// allocs/op regressed beyond -alloc-tol — or when compression or
// decompression throughput fell more than -gbs-tol below the recorded
// baseline (20% by default — tight enough to catch a real kernel
// regression now that the hot paths run word-at-a-time, with enough slack
// for runner noise; 0 disables the throughput check). Both experiments regress
// against one baseline file: rows are matched by executor name, and rows
// missing on either side are skipped.
package main

import (
	"flag"
	"fmt"
	"os"

	"fzmod/internal/bench"
	"fzmod/internal/device"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table3, fig1, fig2, fig3, fig4, stf, hist, secondary, fusion, place, chunked, stream, all")
	large := flag.Bool("large", false, "use full-scale workloads")
	jsonPath := flag.String("json", "", "write the chunked/stream experiment's machine-readable report to this path")
	baseline := flag.String("baseline", "", "compare the chunked/stream report against this baseline JSON and fail on regression")
	allocTol := flag.Float64("alloc-tol", 0.2, "allowed fractional allocs/op regression against -baseline")
	gbsTol := flag.Float64("gbs-tol", 0.2, "allowed fractional comp/dec throughput regression against -baseline (0 disables)")
	flag.Parse()

	sc := bench.Small
	if *large {
		sc = bench.Full
	}
	h100 := device.NewH100Platform()
	v100 := device.NewV100Platform()
	w := os.Stdout

	if (*jsonPath != "" || *baseline != "") && *exp != "chunked" && *exp != "stream" {
		fmt.Fprintln(os.Stderr, "fzbench: -json/-baseline apply to -exp chunked or -exp stream only")
		os.Exit(2)
	}

	// gate writes the report and evaluates the allocs + throughput
	// regression gates shared by the chunked and stream experiments.
	gate := func(report *bench.ChunkedReport) error {
		if *jsonPath != "" {
			if err := report.WriteJSON(*jsonPath); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", *jsonPath)
		}
		if *baseline == "" {
			return nil
		}
		base, err := bench.LoadChunkedReport(*baseline)
		if err != nil {
			return err
		}
		if err := bench.CompareAllocs(base, report, *allocTol); err != nil {
			return err
		}
		fmt.Fprintf(w, "allocs/op within %.0f%% of %s\n", 100**allocTol, *baseline)
		if *gbsTol > 0 {
			if err := bench.CompareThroughput(base, report, *gbsTol); err != nil {
				return err
			}
			fmt.Fprintf(w, "comp/dec GB/s within %.0f%% of %s\n", 100**gbsTol, *baseline)
		}
		return nil
	}

	run := func(name string) error {
		switch name {
		case "table3":
			bench.Table3(w, h100, sc)
		case "fig1":
			bench.Fig1(w, h100, sc)
		case "fig2":
			bench.Speedup(w, h100, sc)
		case "fig3":
			bench.Speedup(w, v100, sc)
		case "fig4":
			bench.Fig4(w, h100, sc)
		case "stf":
			return bench.STFAblation(w, h100, sc)
		case "hist":
			return bench.HistAblation(w, h100, sc)
		case "secondary":
			return bench.SecondaryAblation(w, h100, sc)
		case "fusion":
			return bench.FusionAblation(w, h100, sc)
		case "place":
			return bench.PlaceAblation(w, h100, sc)
		case "chunked":
			report, err := bench.ChunkedComparisonReport(w, h100, sc)
			if err != nil {
				return err
			}
			return gate(report)
		case "stream":
			report, err := bench.StreamComparisonReport(w, h100, sc)
			if err != nil {
				return err
			}
			return gate(report)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table3", "fig1", "fig2", "fig3", "fig4", "stf", "hist", "secondary", "fusion", "place", "chunked", "stream"}
	}
	for _, name := range names {
		fmt.Fprintf(w, "\n===== %s =====\n", name)
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "fzbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
