// Command fzbench regenerates the paper's evaluation (§4): Table 3,
// Figures 1–4, and the design-choice ablations called out in DESIGN.md.
//
// Usage:
//
//	fzbench -exp table3|fig1|fig2|fig3|fig4|stf|hist|secondary|fusion|chunked|all [-large]
//	fzbench -exp chunked -json BENCH_new.json [-baseline BENCH_chunked.json] [-alloc-tol 0.2]
//
// Small-scale workloads are the default so a full sweep finishes quickly;
// -large switches to the harness default dimensions (scaled from the
// paper's Table 2). -json writes the chunked experiment's machine-readable
// report; with -baseline the run exits nonzero when allocs/op regressed
// beyond -alloc-tol against the recorded baseline, which is how CI keeps
// the repo's perf trajectory honest.
package main

import (
	"flag"
	"fmt"
	"os"

	"fzmod/internal/bench"
	"fzmod/internal/device"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table3, fig1, fig2, fig3, fig4, stf, hist, secondary, fusion, place, chunked, all")
	large := flag.Bool("large", false, "use full-scale workloads")
	jsonPath := flag.String("json", "", "write the chunked experiment's machine-readable report to this path")
	baseline := flag.String("baseline", "", "compare the chunked report against this baseline JSON and fail on allocs/op regression")
	allocTol := flag.Float64("alloc-tol", 0.2, "allowed fractional allocs/op regression against -baseline")
	flag.Parse()

	sc := bench.Small
	if *large {
		sc = bench.Full
	}
	h100 := device.NewH100Platform()
	v100 := device.NewV100Platform()
	w := os.Stdout

	if (*jsonPath != "" || *baseline != "") && *exp != "chunked" {
		fmt.Fprintln(os.Stderr, "fzbench: -json/-baseline apply to -exp chunked only")
		os.Exit(2)
	}

	run := func(name string) error {
		switch name {
		case "table3":
			bench.Table3(w, h100, sc)
		case "fig1":
			bench.Fig1(w, h100, sc)
		case "fig2":
			bench.Speedup(w, h100, sc)
		case "fig3":
			bench.Speedup(w, v100, sc)
		case "fig4":
			bench.Fig4(w, h100, sc)
		case "stf":
			return bench.STFAblation(w, h100, sc)
		case "hist":
			return bench.HistAblation(w, h100, sc)
		case "secondary":
			return bench.SecondaryAblation(w, h100, sc)
		case "fusion":
			return bench.FusionAblation(w, h100, sc)
		case "place":
			return bench.PlaceAblation(w, h100, sc)
		case "chunked":
			report, err := bench.ChunkedComparisonReport(w, h100, sc)
			if err != nil {
				return err
			}
			if *jsonPath != "" {
				if err := report.WriteJSON(*jsonPath); err != nil {
					return err
				}
				fmt.Fprintf(w, "wrote %s\n", *jsonPath)
			}
			if *baseline != "" {
				base, err := bench.LoadChunkedReport(*baseline)
				if err != nil {
					return err
				}
				if err := bench.CompareAllocs(base, report, *allocTol); err != nil {
					return err
				}
				fmt.Fprintf(w, "allocs/op within %.0f%% of %s\n", 100**allocTol, *baseline)
			}
			return nil
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table3", "fig1", "fig2", "fig3", "fig4", "stf", "hist", "secondary", "fusion", "place", "chunked"}
	}
	for _, name := range names {
		fmt.Fprintf(w, "\n===== %s =====\n", name)
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "fzbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
