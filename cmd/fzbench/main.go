// Command fzbench regenerates the paper's evaluation (§4): Table 3,
// Figures 1–4, and the design-choice ablations called out in DESIGN.md.
//
// Usage:
//
//	fzbench -exp table3|fig1|fig2|fig3|fig4|stf|hist|secondary|fusion|chunked|stream|region|faults|serve|all [-large]
//	fzbench -exp chunked -json BENCH_new.json [-baseline BENCH_chunked.json] [-alloc-tol 0.2] [-gbs-tol 0.2] [-scal-tol 0.2]
//	fzbench -exp stream  -json BENCH_stream_new.json -baseline BENCH_chunked.json
//	fzbench -exp serve   -clients 8 -iters 4 -json BENCH_serve_new.json
//	fzbench -exp chunked -large -cpuprofile cpu.pprof -mutexprofile mutex.pprof
//
// Small-scale workloads are the default so a full sweep finishes quickly;
// -large switches to the harness default dimensions (scaled from the
// paper's Table 2). -json writes the chunked, stream, region or serve
// experiment's machine-readable report; with -baseline the run exits
// nonzero when
// allocs/op regressed beyond -alloc-tol, when compression or decompression
// throughput fell more than -gbs-tol below the recorded baseline, or when
// a matrix row's scaling_efficiency fell more than -scal-tol below the
// baseline's (0 disables either throughput gate). Both experiments regress
// against one baseline file: rows are matched by executor name, and rows
// missing on either side are skipped.
//
// The -cpuprofile, -memprofile and -mutexprofile flags write pprof
// profiles covering the selected experiments, so a scaling regression
// caught by the gates is diagnosable straight from a bench artifact
// (`go tool pprof fzbench cpu.pprof`); see README "Profiling a
// regression".
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"fzmod/internal/bench"
	"fzmod/internal/device"
)

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "experiment: table3, fig1, fig2, fig3, fig4, stf, hist, secondary, fusion, place, chunked, stream, region, faults, serve, all")
	large := flag.Bool("large", false, "use full-scale workloads")
	jsonPath := flag.String("json", "", "write the chunked/stream experiment's machine-readable report to this path")
	baseline := flag.String("baseline", "", "compare the chunked/stream report against this baseline JSON and fail on regression")
	allocTol := flag.Float64("alloc-tol", 0.2, "allowed fractional allocs/op regression against -baseline")
	gbsTol := flag.Float64("gbs-tol", 0.2, "allowed fractional comp/dec throughput regression against -baseline (0 disables)")
	scalTol := flag.Float64("scal-tol", 0.2, "allowed fractional scaling_efficiency regression against -baseline (0 disables)")
	clients := flag.Int("clients", 8, "serve experiment: concurrent clients")
	iters := flag.Int("iters", 4, "serve experiment: requests per client per class")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the run to this path")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention profile of the run to this path")
	flag.Parse()

	sc := bench.Small
	if *large {
		sc = bench.Full
	}
	h100 := device.NewH100Platform()
	v100 := device.NewV100Platform()
	w := os.Stdout

	if (*jsonPath != "" || *baseline != "") && *exp != "chunked" && *exp != "stream" && *exp != "region" && *exp != "faults" && *exp != "serve" {
		fmt.Fprintln(os.Stderr, "fzbench: -json/-baseline apply to -exp chunked, stream, region, faults or serve only")
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fzbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "fzbench: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *mutexProfile != "" {
		// Sample one in five contention events: cheap enough to leave on
		// for a full matrix run, dense enough to rank the hot locks.
		runtime.SetMutexProfileFraction(5)
		defer writeProfile(*mutexProfile, "mutex")
	}
	if *memProfile != "" {
		defer func() {
			runtime.GC() // settle the heap so live objects dominate
			writeProfile(*memProfile, "heap")
		}()
	}

	// gate writes the report and evaluates the allocs + throughput +
	// scaling regression gates shared by the chunked and stream
	// experiments.
	gate := func(report *bench.ChunkedReport) error {
		if *jsonPath != "" {
			if err := report.WriteJSON(*jsonPath); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", *jsonPath)
		}
		if *baseline == "" {
			return nil
		}
		base, err := bench.LoadChunkedReport(*baseline)
		if err != nil {
			return err
		}
		if err := bench.CompareAllocs(base, report, *allocTol); err != nil {
			return err
		}
		fmt.Fprintf(w, "allocs/op within %.0f%% of %s\n", 100**allocTol, *baseline)
		if *gbsTol > 0 {
			if base.Kernels != report.Kernels {
				fmt.Fprintf(w, "kernel tier differs (baseline %q, this run %q): absolute GB/s gate skipped\n",
					base.Kernels, report.Kernels)
			} else if err := bench.CompareThroughput(base, report, *gbsTol); err != nil {
				return err
			} else {
				fmt.Fprintf(w, "comp/dec GB/s within %.0f%% of %s\n", 100**gbsTol, *baseline)
			}
		}
		if *scalTol > 0 {
			if err := bench.CompareScaling(base, report, *scalTol); err != nil {
				return err
			}
			fmt.Fprintf(w, "scaling efficiency within %.0f%% of %s\n", 100**scalTol, *baseline)
		}
		return nil
	}

	runExp := func(name string) error {
		switch name {
		case "table3":
			bench.Table3(w, h100, sc)
		case "fig1":
			bench.Fig1(w, h100, sc)
		case "fig2":
			bench.Speedup(w, h100, sc)
		case "fig3":
			bench.Speedup(w, v100, sc)
		case "fig4":
			bench.Fig4(w, h100, sc)
		case "stf":
			return bench.STFAblation(w, h100, sc)
		case "hist":
			return bench.HistAblation(w, h100, sc)
		case "secondary":
			return bench.SecondaryAblation(w, h100, sc)
		case "fusion":
			return bench.FusionAblation(w, h100, sc)
		case "place":
			return bench.PlaceAblation(w, h100, sc)
		case "chunked":
			report, err := bench.ChunkedComparisonReport(w, h100, sc)
			if err != nil {
				return err
			}
			return gate(report)
		case "stream":
			report, err := bench.StreamComparisonReport(w, h100, sc)
			if err != nil {
				return err
			}
			return gate(report)
		case "region":
			report, err := bench.RegionComparisonReport(w, h100, sc)
			if err != nil {
				return err
			}
			return gate(report)
		case "faults":
			report, err := bench.FaultsComparisonReport(w, h100, sc)
			if err != nil {
				return err
			}
			return gate(report)
		case "serve":
			report, err := bench.ServeLoadReport(w, sc, *clients, *iters)
			if err != nil {
				return err
			}
			return gate(report)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table3", "fig1", "fig2", "fig3", "fig4", "stf", "hist", "secondary", "fusion", "place", "chunked", "stream", "region", "faults", "serve"}
	}
	for _, name := range names {
		fmt.Fprintf(w, "\n===== %s =====\n", name)
		if err := runExp(name); err != nil {
			fmt.Fprintf(os.Stderr, "fzbench: %s: %v\n", name, err)
			return 1
		}
	}
	return 0
}

// writeProfile dumps a named runtime profile to path.
func writeProfile(path, profile string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fzbench: %v\n", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(profile).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "fzbench: writing %s profile: %v\n", profile, err)
	}
}
