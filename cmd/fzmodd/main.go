// Command fzmodd is the FZModules compression daemon: a multi-tenant
// HTTP service where every request executes over one warm shared
// platform. The admission controller treats -workers as a global
// parallelism budget (requests lease slices of it, excess requests queue
// and shed), small compress requests coalesce into batches, and /metrics
// exports the daemon's flat counters.
//
// Endpoints:
//
//	POST   /v1/compress?dims=XxYxZ&eb=1e-4[&mode=rel|abs][&preset=..][&workers=N][&chunk=E]
//	POST   /v1/decompress[?workers=N]
//	POST   /v1/probe
//	PUT    /v1/objects/<name>
//	GET    /v1/objects/<name>
//	DELETE /v1/objects/<name>
//	GET    /v1/objects/<name>/region?sel=i0:i1,j0:j1,k0:k1[&workers=N]
//	POST   /v1/admin/budget?workers=N
//	GET    /metrics
//	GET    /healthz
//	GET    /readyz
//
// SIGTERM/SIGINT drains gracefully: new requests are refused with 503 +
// Retry-After while in-flight requests complete (bounded by
// -drain-timeout). SIGHUP hot-reloads the worker budget from
// FZMODD_WORKERS (falling back to -workers) without dropping queued
// requests; POST /v1/admin/budget does the same over HTTP.
//
// Example:
//
//	fzmodd -listen :8092 -workers 8 &
//	curl -s --data-binary @field.f32 'localhost:8092/v1/compress?dims=256x256x256&eb=1e-4' -o field.fzm
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"fzmod/internal/device"
	"fzmod/internal/serve"
)

func main() {
	var (
		listen    = flag.String("listen", ":8092", "address to serve on")
		workers   = flag.Int("workers", 0, "global worker budget (0 = platform width)")
		preset    = flag.String("preset", "default", "default pipeline preset: default, speed, quality")
		lease     = flag.Int("lease", 1, "workers leased per request when the request names none")
		maxQueue  = flag.Int("max-queue", 64, "queued requests before shedding with 429 (-1 = none)")
		maxWait   = flag.Duration("max-wait", 2*time.Second, "longest a request may queue before 429 (-1s = forever)")
		batchN    = flag.Int("batch-items", 8, "batch size trigger, in requests")
		batchB    = flag.Int("batch-bytes", 4<<20, "batch size trigger, in raw payload bytes")
		batchWait = flag.Duration("batch-wait", 2*time.Millisecond, "batch max-wait trigger")
		batchThr  = flag.Int("batch-threshold", 256<<10, "payloads up to this many raw bytes coalesce (-1 = never)")
		cacheMB   = flag.Int64("cache-mb", 256, "region slab-cache budget in MiB")
		timeout   = flag.Duration("timeout", 0, "per-request execution timeout (0 = none)")
		maxBody   = flag.Int64("max-body-mb", 1024, "request body cap in MiB")
		drainWait = flag.Duration("drain-timeout", 10*time.Second, "longest a graceful shutdown waits for in-flight requests")
	)
	flag.Parse()

	// One warm platform for the daemon's lifetime: its BufPool and stats
	// are shared by every request. (Kernel tier comes from auto-detection
	// or the FZMOD_KERNELS environment variable, as everywhere else.)
	p := device.NewH100Platform()
	srv := serve.New(p, serve.Config{
		Preset:         *preset,
		Workers:        *workers,
		DefaultLease:   *lease,
		MaxQueue:       *maxQueue,
		MaxWait:        *maxWait,
		BatchItems:     *batchN,
		BatchBytes:     *batchB,
		BatchWait:      *batchWait,
		BatchThreshold: *batchThr,
		CacheBytes:     *cacheMB << 20,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody << 20,
	})
	hs := &http.Server{Addr: *listen, Handler: srv.Handler()}

	// SIGHUP hot-reloads the worker budget: FZMODD_WORKERS if set, else
	// the -workers flag (0 = platform width) — queued requests are never
	// dropped by a reload.
	reload := make(chan os.Signal, 1)
	signal.Notify(reload, syscall.SIGHUP)
	go func() {
		for range reload {
			budget := *workers
			if env := os.Getenv("FZMODD_WORKERS"); env != "" {
				if v, err := strconv.Atoi(env); err == nil && v > 0 {
					budget = v
				} else {
					log.Printf("fzmodd: ignoring FZMODD_WORKERS=%q: want a positive integer", env)
				}
			}
			if budget <= 0 {
				budget = p.Workers(device.Accel)
			}
			srv.Admission().Resize(budget)
			log.Printf("fzmodd: worker budget reloaded to %d (%d leased, %d queued)",
				srv.Admission().Budget(), srv.Admission().InUse(), srv.Admission().QueueDepth())
		}
	}()

	// SIGTERM/SIGINT drains: stop accepting (readyz flips, new requests
	// get 503 + Retry-After), flush the batcher, wait out in-flight
	// requests up to -drain-timeout, then close the listener.
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		log.Printf("fzmodd: draining (%d in flight, up to %v)", srv.InFlight(), *drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			log.Printf("fzmodd: %v", err)
		}
		hs.Shutdown(ctx)
	}()

	log.Printf("fzmodd: serving on %s (budget %d workers, kernels %s)",
		*listen, srv.Admission().Budget(), p.KernelImpl())
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	log.Printf("fzmodd: shutdown complete")
}
