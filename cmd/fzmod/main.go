// Command fzmod is the CLI compressor: it compresses raw little-endian
// float32 files with a chosen pipeline and error bound, decompresses
// FZModules containers, and reports ratio/quality metrics.
//
// Usage:
//
//	fzmod -z  -i data.f32 -o data.fz  -dims 512x512x512 -eb 1e-4 [-mode rel|abs] [-pipeline default|speed|quality] [-secondary]
//	       [-chunk elems] [-workers n] [-v]
//	fzmod -z  -stream -i data.f32 -o data.fzs -dims 512x512x512 -eb 1e-3 -mode abs [-window n]
//	fzmod -d  -i data.fz  -o back.f32 [-v]
//	fzmod -d  -region 0:64,0:64,8:16 [-proofs] -i data.fz -o sub.f32
//	fzmod -probe -i data.fz
//	fzmod -verify  -i data.fzc
//	fzmod -salvage -i damaged.fzc -o recovered.fzc
//
// After -z the tool verifies the roundtrip and prints CR, bitrate, PSNR
// and the measured throughput. -chunk and -workers drive the concurrent
// chunked executor explicitly (chunk granularity in elements, scheduler
// stream-pool width); -v prints the executor report — task count, stage
// overlap, critical path, and the buffer-pool hit rate.
//
// -stream switches to the out-of-core path: the input is consumed slab
// window by slab window (at most -window slabs resident) and chunks flush
// to the output as they finish, so files far larger than memory — or data
// arriving on stdin — compress in bounded memory. "-" as the input or
// output names stdin/stdout, so fzmod composes in shell pipelines:
//
//	cat huge.f32 | fzmod -z -stream -i - -o - -dims 1024x1024x1024 -eb 2.5 -mode abs | ssh host 'cat > huge.fzs'
//
// Streaming compression requires an absolute bound (-mode abs): a
// relative bound would need the whole field's value range before the
// first chunk could be emitted. Decompression detects the container
// flavor from its magic, so -d handles monolithic, chunked and streaming
// containers alike; streaming containers decode out-of-core.
//
// -region restricts decompression to a subvolume: only the slab chunks
// the half-open selection i0:i1,j0:j1,k0:k1 intersects are fetched and
// decoded (trailing axes may be omitted and span their full extent).
// The input must be random-access — a local file or an http(s):// URL
// served with Range support — so "-i -" is rejected. See docs/FORMAT.md
// for the container layout that makes this possible. -proofs forces
// Merkle proof verification of every fetched chunk (it is automatic over
// http(s) inputs); tampered bytes are refused with a proof mismatch even
// when the chunk CRC32 collides.
//
// -verify (without -z, -d or -probe) is the integrity audit: the whole
// artifact is walked, every chunk is checked against its recorded CRC32
// and (on version ≥ 2 containers) its Merkle leaf hash, and the exit
// status is nonzero when any chunk is damaged — naming the chunk.
// -salvage rebuilds a fully valid chunked container from every intact
// chunk of a damaged artifact; recovered payloads are bit-identical to
// the originals.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"fzmod"
	"fzmod/internal/core"
	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
)

// config carries the parsed command line plus the process streams, so
// tests can run full CLI flows in-process against pipes and buffers.
type config struct {
	compress, decompress, probe bool
	in, out                     string
	dims                        string
	eb                          float64
	mode                        string
	pipeline                    string
	secondary                   bool
	verify                      bool
	chunk                       int
	workers                     int
	stream                      bool
	window                      int
	region                      string
	proofs                      bool
	salvage                     bool
	verbose                     bool
	// verifyArtifact selects the integrity-audit mode: -verify given
	// explicitly with none of -z/-d/-probe/-salvage (main detects the
	// explicit flag via flag.Visit; tests set this field directly).
	verifyArtifact bool

	stdin  io.Reader
	stdout io.Writer
	stderr io.Writer
}

func main() {
	var cfg config
	flag.BoolVar(&cfg.compress, "z", false, "compress")
	flag.BoolVar(&cfg.decompress, "d", false, "decompress")
	flag.BoolVar(&cfg.probe, "probe", false, "print container metadata")
	flag.StringVar(&cfg.in, "i", "", "input file (- for stdin)")
	flag.StringVar(&cfg.out, "o", "", "output file (- for stdout)")
	flag.StringVar(&cfg.dims, "dims", "", "field dims, e.g. 512x512x512 (x fastest)")
	flag.Float64Var(&cfg.eb, "eb", 1e-4, "error bound")
	flag.StringVar(&cfg.mode, "mode", "rel", "bound mode: rel (value-range relative) or abs")
	flag.StringVar(&cfg.pipeline, "pipeline", "default", "pipeline: default, speed, quality, auto, auto-ratio, auto-throughput")
	flag.BoolVar(&cfg.secondary, "secondary", false, "attach the secondary (zstd-slot) encoder")
	flag.BoolVar(&cfg.verify, "verify", true, "verify roundtrip after compression (in-memory paths)")
	flag.IntVar(&cfg.chunk, "chunk", 0, "chunk granularity in elements (0 = default; forces the chunked executor)")
	flag.IntVar(&cfg.workers, "workers", 0, "scheduler stream-pool width (0 = platform width; forces the chunked executor)")
	flag.BoolVar(&cfg.stream, "stream", false, "stream out-of-core: bounded-memory compression/decompression over files or pipes")
	flag.IntVar(&cfg.window, "window", 0, "streaming: max slabs in flight (0 = default)")
	flag.StringVar(&cfg.region, "region", "", "decompress only the subvolume i0:i1,j0:j1,k0:k1 (half-open, x fastest; needs a seekable -i)")
	flag.BoolVar(&cfg.proofs, "proofs", false, "region reads: verify every fetched chunk against the container's Merkle root (automatic for http(s) inputs)")
	flag.BoolVar(&cfg.salvage, "salvage", false, "rebuild a valid chunked container from every intact chunk of a damaged artifact")
	flag.BoolVar(&cfg.verbose, "v", false, "print the executor report (tasks, overlap, pool hit rate)")
	flag.Parse()
	// -verify alone (no -z/-d/-probe/-salvage) is the artifact integrity
	// audit rather than the post-compress roundtrip check the same flag
	// gates after -z.
	if !cfg.compress && !cfg.decompress && !cfg.probe && !cfg.salvage {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "verify" {
				cfg.verifyArtifact = true
			}
		})
	}
	cfg.stdin = os.Stdin
	cfg.stdout = os.Stdout
	cfg.stderr = os.Stderr

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "fzmod:", err)
		os.Exit(1)
	}
}

// openIn resolves -i to a reader ("-" = the configured stdin).
func (cfg *config) openIn() (io.Reader, func(), error) {
	if cfg.in == "-" {
		return cfg.stdin, func() {}, nil
	}
	f, err := os.Open(cfg.in)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// createOut resolves -o to a writer ("-" = the configured stdout).
func (cfg *config) createOut() (io.Writer, func() error, error) {
	if cfg.out == "-" {
		return cfg.stdout, func() error { return nil }, nil
	}
	f, err := os.Create(cfg.out)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// removeOut deletes the -o file after a failed run so no partial artifact
// survives; a no-op for stdout.
func (cfg *config) removeOut() {
	if cfg.out != "" && cfg.out != "-" {
		os.Remove(cfg.out)
	}
}

// writeOut hands a buffered writer on -o to emit and enforces the
// no-partial-artifact protocol shared by every output path: flush and
// close on success, remove the file on any failure (a truncated container
// or field must never survive looking like valid output).
func (cfg *config) writeOut(emit func(io.Writer) error) error {
	w, closeOut, err := cfg.createOut()
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	err = emit(bw)
	if err == nil {
		err = bw.Flush()
	}
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	if err != nil {
		cfg.removeOut()
	}
	return err
}

// status is where human-readable progress goes: stdout normally, stderr
// when stdout carries payload bytes.
func (cfg *config) status() io.Writer {
	if cfg.out == "-" {
		return cfg.stderr
	}
	return cfg.stdout
}

func run(cfg config) error {
	if cfg.in == "" {
		return fmt.Errorf("missing -i input file")
	}
	if cfg.stderr == nil {
		cfg.stderr = os.Stderr
	}
	if cfg.region != "" && !cfg.decompress {
		return fmt.Errorf("-region only applies to decompression (-d)")
	}
	if cfg.proofs && cfg.region == "" {
		return fmt.Errorf("-proofs only applies to region reads (-d -region)")
	}
	p := fzmod.NewPlatform()

	switch {
	case cfg.probe:
		return probe(cfg)
	case cfg.salvage:
		return salvageArtifact(cfg)
	case cfg.verifyArtifact:
		return verifyArtifact(cfg)
	case cfg.compress:
		if cfg.stream {
			return compressStream(cfg, p)
		}
		return compressInMemory(cfg, p)
	case cfg.decompress:
		return decompress(cfg, p)
	}
	return fmt.Errorf("one of -z, -d, -probe, -verify, -salvage is required")
}

// openFetcher resolves -i to a random-access ChunkFetcher: an HTTP range
// fetcher for http(s) URLs, a file fetcher otherwise. The cleanup closes
// the file when there is one.
func openFetcher(in string) (fzmod.ChunkFetcher, bool, func(), error) {
	if in == "-" {
		return nil, false, nil, fmt.Errorf("random access needed; -i - (stdin) cannot seek")
	}
	if strings.HasPrefix(in, "http://") || strings.HasPrefix(in, "https://") {
		return fzmod.NewHTTPFetcher(in, nil), true, func() {}, nil
	}
	f, err := fzmod.NewFileFetcher(in)
	if err != nil {
		return nil, false, nil, err
	}
	cleanup := func() {}
	if c, ok := f.(io.Closer); ok {
		cleanup = func() { c.Close() }
	}
	return f, false, cleanup, nil
}

// verifyArtifact is the integrity audit: survey the whole artifact,
// report every chunk's verdict, and fail (nonzero exit) when any chunk
// is damaged or the container-level integrity facts do not hold.
func verifyArtifact(cfg config) error {
	fetcher, _, cleanup, err := openFetcher(cfg.in)
	if err != nil {
		return err
	}
	defer cleanup()
	s, err := fzmod.SurveyArtifact(fetcher)
	if err != nil {
		return err
	}
	w := cfg.stdout
	fmt.Fprintf(w, "pipeline:  %s (%s)\ndims:      %v\nchunks:    %d\n",
		s.Header.Pipeline, s.Flavor, s.Header.Dims, len(s.Chunks))
	switch {
	case s.Root == nil:
		fmt.Fprintf(w, "merkle:    none (format v1 or monolithic; CRC32 only)\n")
	case s.RootVerified:
		fmt.Fprintf(w, "merkle:    root verified (%x…)\n", s.Root[:8])
	default:
		fmt.Fprintf(w, "merkle:    ROOT MISMATCH (index tampered or damaged)\n")
	}
	var damaged []string
	for _, sc := range s.Chunks {
		if sc.State == fzmod.ChunkIntact {
			fmt.Fprintf(w, "  chunk %-3d %s\n", sc.Index, sc.State)
			continue
		}
		fmt.Fprintf(w, "  chunk %-3d %s: %s\n", sc.Index, sc.State, sc.Detail)
		damaged = append(damaged, fmt.Sprintf("chunk %d %s (%s)", sc.Index, sc.State, sc.Detail))
	}
	if s.Truncated {
		fmt.Fprintf(w, "artifact:  TRUNCATED\n")
	}
	if s.Damaged() {
		if len(damaged) == 0 {
			return fmt.Errorf("artifact damaged: container-level integrity failure (truncation or root mismatch)")
		}
		return fmt.Errorf("artifact damaged: %s", strings.Join(damaged, "; "))
	}
	fmt.Fprintf(w, "artifact:  OK (%d/%d chunks intact)\n", s.Intact(), len(s.Chunks))
	return nil
}

// salvageArtifact rebuilds a valid chunked container from every intact
// chunk of a damaged artifact. Succeeds (exit 0) whenever at least one
// chunk was recoverable; the report says what was lost.
func salvageArtifact(cfg config) error {
	fetcher, _, cleanup, err := openFetcher(cfg.in)
	if err != nil {
		return err
	}
	defer cleanup()
	blob, s, err := fzmod.SalvageChunked(fetcher)
	if err != nil {
		return err
	}
	if cfg.out == "" {
		cfg.out = cfg.in + ".salvaged"
	}
	if err := cfg.writeOut(func(w io.Writer) error {
		_, err := w.Write(blob)
		return err
	}); err != nil {
		return err
	}
	st := cfg.status()
	fmt.Fprintf(st, "salvaged %d/%d chunks of %s artifact → %s (%d bytes)\n",
		s.Intact(), len(s.Chunks), s.Flavor, cfg.out, len(blob))
	for _, sc := range s.Chunks {
		if sc.State != fzmod.ChunkIntact {
			fmt.Fprintf(st, "  lost chunk %d (%s: %s)\n", sc.Index, sc.State, sc.Detail)
		}
	}
	return nil
}

func compressInMemory(cfg config, p *fzmod.Platform) error {
	if cfg.in == "-" {
		return fmt.Errorf("-i - requires -stream (in-memory compression needs a file)")
	}
	blob, err := os.ReadFile(cfg.in)
	if err != nil {
		return err
	}
	dims, err := parseDims(cfg.dims)
	if err != nil {
		return err
	}
	if len(blob)%4 != 0 {
		return fmt.Errorf("input is not a float32 stream (%d bytes)", len(blob))
	}
	data := device.BytesF32(blob)
	if dims.N() != len(data) {
		return fmt.Errorf("dims %v describe %d values, file has %d", dims, dims.N(), len(data))
	}
	bound, err := parseBound(cfg.eb, cfg.mode)
	if err != nil {
		return err
	}
	pl, err := resolvePipeline(cfg, p, data, dims, bound)
	if err != nil {
		return err
	}
	var (
		cblob  []byte
		report *core.ExecReport
	)
	t0 := time.Now()
	if cfg.chunk > 0 || cfg.workers > 0 || cfg.verbose {
		// Explicit executor control (or report capture): lower through
		// the chunked graph with the requested options.
		opts := core.ChunkOpts{ChunkElems: cfg.chunk, Workers: cfg.workers}
		cblob, report, err = pl.CompressChunkedReport(p, data, dims, bound, opts)
	} else {
		cblob, err = pl.Compress(p, data, dims, bound)
	}
	compSec := time.Since(t0).Seconds()
	if err != nil {
		return err
	}
	if cfg.out == "" {
		cfg.out = cfg.in + ".fz"
	}
	if err := cfg.writeOut(func(w io.Writer) error {
		_, err := w.Write(cblob)
		return err
	}); err != nil {
		return err
	}
	fmt.Fprintf(cfg.status(), "%s: %d → %d bytes  CR %.2f  bitrate %.3f b/v  %.3f GB/s\n",
		pl.Name(), len(blob), len(cblob),
		metrics.CompressionRatio(len(blob), len(cblob)),
		metrics.Bitrate(dims.N(), len(cblob)),
		metrics.Throughput(len(blob), compSec))
	if cfg.verbose && report != nil {
		printReport(cfg.status(), "compress", report)
	}
	if cfg.verify {
		dec, _, err := fzmod.Decompress(p, cblob)
		if err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		q, err := fzmod.Evaluate(p, data, dec)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.status(), "verify: PSNR %.2f dB, max abs err %g, NRMSE %.3g\n", q.PSNR, q.MaxAbsErr, q.NRMSE)
	}
	return nil
}

// compressStream is the out-of-core write path: input read slab window by
// slab window, chunks flushed as they finish, memory O(window).
func compressStream(cfg config, p *fzmod.Platform) error {
	dims, err := parseDims(cfg.dims)
	if err != nil {
		return err
	}
	bound, err := parseBound(cfg.eb, cfg.mode)
	if err != nil {
		return err
	}
	if bound.Mode != preprocess.Abs {
		return fmt.Errorf("-stream requires -mode abs (a relative bound needs the whole field's value range before the first chunk can be emitted)")
	}
	pl, err := pipelineByName(cfg.pipeline)
	if err != nil {
		return err
	}
	if pl == nil {
		return fmt.Errorf("-stream requires an explicit -pipeline (auto-selection samples the whole field)")
	}
	if cfg.secondary && pl.Sec == nil {
		pl = fzmod.WithZstdSlot(pl)
	}
	if cfg.in != "-" {
		// CompressStream reads exactly dims-many values; on a regular file
		// a size mismatch means the declared geometry is wrong, and
		// proceeding would silently truncate (or fail partway through) —
		// reject it up front exactly like the in-memory path does.
		fi, err := os.Stat(cfg.in)
		if err != nil {
			return err
		}
		if want := int64(4) * int64(dims.N()); fi.Size() != want {
			return fmt.Errorf("dims %v describe %d bytes, file has %d", dims, want, fi.Size())
		}
	}
	r, closeIn, err := cfg.openIn()
	if err != nil {
		return err
	}
	defer closeIn()
	if cfg.out == "" {
		if cfg.in == "-" {
			cfg.out = "-"
		} else {
			cfg.out = cfg.in + ".fzs"
		}
	}
	opts := core.StreamOpts{ChunkElems: cfg.chunk, Window: cfg.window, Workers: cfg.workers}
	var written int64
	t0 := time.Now()
	if err := cfg.writeOut(func(w io.Writer) error {
		var werr error
		written, werr = pl.CompressStream(p, bufio.NewReaderSize(r, 1<<20), dims, bound, w, opts)
		return werr
	}); err != nil {
		return err
	}
	sec := time.Since(t0).Seconds()
	inBytes := 4 * dims.N()
	fmt.Fprintf(cfg.status(), "%s (stream): %d → %d bytes  CR %.2f  bitrate %.3f b/v  %.3f GB/s\n",
		pl.Name(), inBytes, written,
		metrics.CompressionRatio(inBytes, int(written)),
		metrics.Bitrate(dims.N(), int(written)),
		metrics.Throughput(inBytes, sec))
	return nil
}

func decompress(cfg config, p *fzmod.Platform) error {
	if cfg.region != "" {
		return decompressRegion(cfg, p)
	}
	r, closeIn, err := cfg.openIn()
	if err != nil {
		return err
	}
	defer closeIn()
	br := bufio.NewReaderSize(r, 1<<20)
	magic, err := br.Peek(4)
	if err != nil {
		return fmt.Errorf("reading container magic: %w", err)
	}

	out := cfg.out
	if out == "" {
		if cfg.in == "-" {
			out = "-"
		} else {
			out = strings.TrimSuffix(strings.TrimSuffix(cfg.in, ".fzs"), ".fz") + ".out.f32"
		}
	}

	if fzio.IsStream(magic) {
		// Out-of-core read path: window-bounded, output flushed in order.
		cfg.out = out
		opts := core.StreamOpts{Window: cfg.window, Workers: cfg.workers}
		var dims grid.Dims
		t0 := time.Now()
		if err := cfg.writeOut(func(w io.Writer) error {
			var err error
			dims, err = fzmod.DecompressStream(p, br, w, opts)
			return err
		}); err != nil {
			return err
		}
		fmt.Fprintf(cfg.status(), "%v: %d values (stream)  %.3f GB/s → %s\n", dims, dims.N(),
			metrics.Throughput(4*dims.N(), time.Since(t0).Seconds()), out)
		return nil
	}

	blob, err := io.ReadAll(br)
	if err != nil {
		return err
	}
	t0 := time.Now()
	data, dims, report, err := fzmod.DecompressReport(p, blob)
	decSec := time.Since(t0).Seconds()
	if err != nil {
		return err
	}
	cfg.out = out
	if err := cfg.writeOut(func(w io.Writer) error {
		_, err := w.Write(device.F32Bytes(data))
		return err
	}); err != nil {
		return err
	}
	fmt.Fprintf(cfg.status(), "%v: %d values  %.3f GB/s → %s\n", dims, dims.N(),
		metrics.Throughput(4*dims.N(), decSec), out)
	if cfg.verbose && report != nil {
		printReport(cfg.status(), "decompress", report)
	}
	return nil
}

// decompressRegion is the random-access read path: the container index is
// fetched from a seekable source (local file or HTTP range requests), the
// slab chunks intersecting -region are decoded, and only the selected
// subvolume is written out.
func decompressRegion(cfg config, p *fzmod.Platform) error {
	fetcher, isHTTP, cleanup, err := openFetcher(cfg.in)
	if err != nil {
		return err
	}
	defer cleanup()
	region, err := fzmod.OpenRegion(p, fetcher, fzmod.RegionOpts{Workers: cfg.workers, VerifyProofs: cfg.proofs})
	if err != nil {
		return err
	}
	sel, err := parseRegionSel(cfg.region, region.Dims())
	if err != nil {
		return err
	}

	t0 := time.Now()
	data, report, err := region.ReadReport(sel)
	sec := time.Since(t0).Seconds()
	if err != nil {
		return err
	}

	out := cfg.out
	if out == "" {
		name := cfg.in
		if isHTTP {
			name = name[strings.LastIndexByte(name, '/')+1:]
			if name == "" {
				name = "remote.fz"
			}
		}
		out = strings.TrimSuffix(strings.TrimSuffix(name, ".fzs"), ".fz") + ".region.f32"
	}
	cfg.out = out
	if err := cfg.writeOut(func(w io.Writer) error {
		_, err := w.Write(device.F32Bytes(data))
		return err
	}); err != nil {
		return err
	}
	rs := report.Region
	fmt.Fprintf(cfg.status(), "region %s of %v: %d values (%d/%d chunks decoded)  %.3f GB/s → %s\n",
		sel, region.Dims(), len(data), rs.Decoded, rs.Chunks,
		metrics.Throughput(4*len(data), sec), out)
	if cfg.verbose {
		fmt.Fprintf(cfg.status(), "  fetched %d payload bytes, %d cache hits, %d proofs verified\n",
			rs.PayloadBytes, rs.CacheHits, rs.ProofVerified)
	}
	return nil
}

// parseRegionSel parses the -region i0:i1,j0:j1,k0:k1 syntax: up to three
// comma-separated half-open ranges, x fastest. Trailing axes may be
// omitted and span their full extent (matching the trailing singleton
// convention of grid.Dims). Range bounds are validated by the read.
func parseRegionSel(s string, d grid.Dims) (fzmod.RegionSel, error) {
	sel := fzmod.FullRegion(d)
	parts := strings.Split(s, ",")
	if len(parts) > 3 {
		return sel, fmt.Errorf("bad -region %q (want i0:i1,j0:j1,k0:k1)", s)
	}
	axes := [3][2]*int{{&sel.X0, &sel.X1}, {&sel.Y0, &sel.Y1}, {&sel.Z0, &sel.Z1}}
	for i, ps := range parts {
		los, his, ok := strings.Cut(ps, ":")
		if !ok {
			return sel, fmt.Errorf("bad -region range %q (want lo:hi)", ps)
		}
		lo, err1 := strconv.Atoi(los)
		hi, err2 := strconv.Atoi(his)
		if err1 != nil || err2 != nil {
			return sel, fmt.Errorf("bad -region range %q (want lo:hi)", ps)
		}
		*axes[i][0], *axes[i][1] = lo, hi
	}
	return sel, nil
}

func probe(cfg config) error {
	r, closeIn, err := cfg.openIn()
	if err != nil {
		return err
	}
	defer closeIn()
	br := bufio.NewReaderSize(r, 1<<20)
	magic, err := br.Peek(4)
	if err != nil {
		return fmt.Errorf("reading container magic: %w", err)
	}
	w := cfg.stdout

	if fzio.IsStream(magic) {
		sr, err := fzio.NewStreamReader(br)
		if err != nil {
			return err
		}
		h := sr.Header()
		fmt.Fprintf(w, "pipeline:  %s (stream)\ndims:      %v\nabs eb:    %g\nrel eb:    %g\nnominal:   %d planes/chunk\n",
			h.Pipeline, h.Dims, h.EB, h.RelEB, h.Planes)
		total := 0
		var buf []byte
		for i := 0; ; i++ {
			payload, planes, err := sr.Next(buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  chunk %-3d length %-9d planes %d\n", i, len(payload), planes)
			total += len(payload)
			buf = payload
		}
		fmt.Fprintf(w, "chunks:    %d\npayload:   %d bytes (trailer verified)\n", sr.NumChunks(), total)
		return nil
	}

	blob, err := io.ReadAll(br)
	if err != nil {
		return err
	}
	if fzio.IsChunked(blob) {
		cc, err := fzio.UnmarshalChunked(blob)
		if err != nil {
			return err
		}
		total := 0
		for _, ref := range cc.Chunks {
			total += ref.Length
		}
		fmt.Fprintf(w, "pipeline:  %s (chunked)\ndims:      %v\nabs eb:    %g\nrel eb:    %g\nchunks:    %d (%d planes/chunk nominal)\npayload:   %d bytes\n",
			cc.Header.Pipeline, cc.Header.Dims, cc.Header.EB, cc.Header.RelEB,
			cc.NumChunks(), cc.Header.Planes, total)
		for i, ref := range cc.Chunks {
			fmt.Fprintf(w, "  chunk %-3d offset %-9d length %-9d planes %d\n", i, ref.Offset, ref.Length, ref.Planes)
		}
		return nil
	}
	c, err := fzio.Unmarshal(blob)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pipeline:  %s\ndims:      %v\nabs eb:    %g\nrel eb:    %g\nsegments:  %s\npayload:   %d bytes\n",
		c.Header.Pipeline, c.Header.Dims, c.Header.EB, c.Header.RelEB,
		strings.Join(c.Names(), ", "), c.Size())
	return nil
}

// parseBound maps -eb/-mode to an ErrorBound.
func parseBound(eb float64, mode string) (preprocess.ErrorBound, error) {
	switch mode {
	case "rel":
		return preprocess.RelBound(eb), nil
	case "abs":
		return preprocess.AbsBound(eb), nil
	default:
		return preprocess.ErrorBound{}, fmt.Errorf("unknown -mode %q", mode)
	}
}

// resolvePipeline picks the preset (or runs data-driven auto-selection)
// and attaches the secondary encoder when requested.
func resolvePipeline(cfg config, p *fzmod.Platform, data []float32, dims grid.Dims, bound preprocess.ErrorBound) (*core.Pipeline, error) {
	pl, err := pipelineByName(cfg.pipeline)
	if err != nil {
		return nil, err
	}
	if pl == nil { // auto-selection objectives
		obj := core.Balanced
		switch cfg.pipeline {
		case "auto-throughput":
			obj = core.MaxThroughput
		case "auto-ratio":
			obj = core.MaxRatio
		}
		var prof core.DataProfile
		pl, prof, err = core.AutoSelect(p, data, dims, bound, obj)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(cfg.status(), "auto-selected %s (delta %.2f quanta, spline advantage %.2fx, zero-delta %.0f%%)\n",
			pl.Name(), prof.DeltaQuanta, prof.SplineAdvantage, 100*prof.ZeroDeltaFrac)
	}
	if cfg.secondary && pl.Sec == nil {
		pl = fzmod.WithZstdSlot(pl)
	}
	return pl, nil
}

// printReport summarizes an executor report: graph shape, observed stage
// overlap, and buffer-pool reuse.
func printReport(w io.Writer, phase string, r *core.ExecReport) {
	fmt.Fprintf(w, "%s executor: %d tasks, critical path %d, overlapped %v\n",
		phase, r.Tasks, r.CriticalPath, r.Overlapped())
	fmt.Fprintf(w, "  buffer pool: %d gets, %d hits (%.0f%% hit rate)\n",
		r.Pool.Gets, r.Pool.Hits, 100*r.Pool.HitRate())
}

// pipelineByName resolves preset names; auto objectives return nil so the
// caller runs data-driven selection.
func pipelineByName(name string) (*core.Pipeline, error) {
	switch name {
	case "default":
		return fzmod.Default(), nil
	case "speed":
		return fzmod.Speed(), nil
	case "quality":
		return fzmod.QualityPipeline(), nil
	case "auto", "auto-ratio", "auto-throughput":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown pipeline %q (want default, speed, quality, auto, auto-ratio, auto-throughput)", name)
	}
}

func parseDims(s string) (grid.Dims, error) {
	if s == "" {
		return grid.Dims{}, fmt.Errorf("missing -dims")
	}
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) < 1 || len(parts) > 3 {
		return grid.Dims{}, fmt.Errorf("bad -dims %q", s)
	}
	vals := [3]int{1, 1, 1}
	for i, ps := range parts {
		v, err := strconv.Atoi(ps)
		if err != nil || v <= 0 {
			return grid.Dims{}, fmt.Errorf("bad -dims component %q", ps)
		}
		vals[i] = v
	}
	return grid.Dims{X: vals[0], Y: vals[1], Z: vals[2]}, nil
}
