// Command fzmod is the CLI compressor: it compresses raw little-endian
// float32 files with a chosen pipeline and error bound, decompresses
// FZModules containers, and reports ratio/quality metrics.
//
// Usage:
//
//	fzmod -z  -i data.f32 -o data.fz  -dims 512x512x512 -eb 1e-4 [-mode rel|abs] [-pipeline default|speed|quality] [-secondary]
//	       [-chunk elems] [-workers n] [-v]
//	fzmod -d  -i data.fz  -o back.f32 [-v]
//	fzmod -probe -i data.fz
//
// After -z the tool verifies the roundtrip and prints CR, bitrate, PSNR
// and the measured throughput. -chunk and -workers drive the concurrent
// chunked executor explicitly (chunk granularity in elements, scheduler
// stream-pool width); -v prints the executor report — task count, stage
// overlap, critical path, and the buffer-pool hit rate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"fzmod"
	"fzmod/internal/core"
	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/metrics"
	"fzmod/internal/preprocess"
)

func main() {
	var (
		compress   = flag.Bool("z", false, "compress")
		decompress = flag.Bool("d", false, "decompress")
		probe      = flag.Bool("probe", false, "print container metadata")
		in         = flag.String("i", "", "input file")
		out        = flag.String("o", "", "output file")
		dimsArg    = flag.String("dims", "", "field dims, e.g. 512x512x512 (x fastest)")
		ebArg      = flag.Float64("eb", 1e-4, "error bound")
		modeArg    = flag.String("mode", "rel", "bound mode: rel (value-range relative) or abs")
		pipeArg    = flag.String("pipeline", "default", "pipeline: default, speed, quality, auto, auto-ratio, auto-throughput")
		secondary  = flag.Bool("secondary", false, "attach the secondary (zstd-slot) encoder")
		verify     = flag.Bool("verify", true, "verify roundtrip after compression")
		chunk      = flag.Int("chunk", 0, "chunk granularity in elements (0 = default; forces the chunked executor)")
		workers    = flag.Int("workers", 0, "scheduler stream-pool width (0 = platform width; forces the chunked executor)")
		verbose    = flag.Bool("v", false, "print the executor report (tasks, overlap, pool hit rate)")
	)
	flag.Parse()

	if err := run(*compress, *decompress, *probe, *in, *out, *dimsArg, *ebArg, *modeArg, *pipeArg, *secondary, *verify, *chunk, *workers, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "fzmod:", err)
		os.Exit(1)
	}
}

func run(compress, decompress, probe bool, in, out, dimsArg string, eb float64, mode, pipe string, secondary, verify bool, chunk, workers int, verbose bool) error {
	if in == "" {
		return fmt.Errorf("missing -i input file")
	}
	blob, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	p := fzmod.NewPlatform()

	switch {
	case probe:
		if fzio.IsChunked(blob) {
			cc, err := fzio.UnmarshalChunked(blob)
			if err != nil {
				return err
			}
			total := 0
			for _, ref := range cc.Chunks {
				total += ref.Length
			}
			fmt.Printf("pipeline:  %s (chunked)\ndims:      %v\nabs eb:    %g\nrel eb:    %g\nchunks:    %d (%d planes/chunk nominal)\npayload:   %d bytes\n",
				cc.Header.Pipeline, cc.Header.Dims, cc.Header.EB, cc.Header.RelEB,
				cc.NumChunks(), cc.Header.Planes, total)
			for i, ref := range cc.Chunks {
				fmt.Printf("  chunk %-3d offset %-9d length %-9d planes %d\n", i, ref.Offset, ref.Length, ref.Planes)
			}
			return nil
		}
		c, err := fzio.Unmarshal(blob)
		if err != nil {
			return err
		}
		fmt.Printf("pipeline:  %s\ndims:      %v\nabs eb:    %g\nrel eb:    %g\nsegments:  %s\npayload:   %d bytes\n",
			c.Header.Pipeline, c.Header.Dims, c.Header.EB, c.Header.RelEB,
			strings.Join(c.Names(), ", "), c.Size())
		return nil

	case compress:
		dims, err := parseDims(dimsArg)
		if err != nil {
			return err
		}
		if len(blob)%4 != 0 {
			return fmt.Errorf("input is not a float32 stream (%d bytes)", len(blob))
		}
		data := device.BytesF32(blob)
		if dims.N() != len(data) {
			return fmt.Errorf("dims %v describe %d values, file has %d", dims, dims.N(), len(data))
		}
		bound := preprocess.RelBound(eb)
		if mode == "abs" {
			bound = preprocess.AbsBound(eb)
		} else if mode != "rel" {
			return fmt.Errorf("unknown -mode %q", mode)
		}
		pl, err := pipelineByName(pipe)
		if err != nil {
			return err
		}
		if pl == nil { // auto-selection objectives
			obj := core.Balanced
			switch pipe {
			case "auto-throughput":
				obj = core.MaxThroughput
			case "auto-ratio":
				obj = core.MaxRatio
			}
			var prof core.DataProfile
			pl, prof, err = core.AutoSelect(p, data, dims, bound, obj)
			if err != nil {
				return err
			}
			fmt.Printf("auto-selected %s (delta %.2f quanta, spline advantage %.2fx, zero-delta %.0f%%)\n",
				pl.Name(), prof.DeltaQuanta, prof.SplineAdvantage, 100*prof.ZeroDeltaFrac)
		}
		if secondary && pl.Sec == nil {
			pl = fzmod.WithZstdSlot(pl)
		}
		var (
			cblob  []byte
			report *core.ExecReport
		)
		t0 := time.Now()
		if chunk > 0 || workers > 0 || verbose {
			// Explicit executor control (or report capture): lower through
			// the chunked graph with the requested options.
			opts := core.ChunkOpts{ChunkElems: chunk, Workers: workers}
			cblob, report, err = pl.CompressChunkedReport(p, data, dims, bound, opts)
		} else {
			cblob, err = pl.Compress(p, data, dims, bound)
		}
		compSec := time.Since(t0).Seconds()
		if err != nil {
			return err
		}
		if out == "" {
			out = in + ".fz"
		}
		if err := os.WriteFile(out, cblob, 0o644); err != nil {
			return err
		}
		fmt.Printf("%s: %d → %d bytes  CR %.2f  bitrate %.3f b/v  %.3f GB/s\n",
			pl.Name(), len(blob), len(cblob),
			metrics.CompressionRatio(len(blob), len(cblob)),
			metrics.Bitrate(dims.N(), len(cblob)),
			metrics.Throughput(len(blob), compSec))
		if verbose && report != nil {
			printReport("compress", report)
		}
		if verify {
			dec, _, err := fzmod.Decompress(p, cblob)
			if err != nil {
				return fmt.Errorf("verify: %w", err)
			}
			q, err := fzmod.Evaluate(p, data, dec)
			if err != nil {
				return err
			}
			fmt.Printf("verify: PSNR %.2f dB, max abs err %g, NRMSE %.3g\n", q.PSNR, q.MaxAbsErr, q.NRMSE)
		}
		return nil

	case decompress:
		t0 := time.Now()
		data, dims, report, err := fzmod.DecompressReport(p, blob)
		decSec := time.Since(t0).Seconds()
		if err != nil {
			return err
		}
		if out == "" {
			out = strings.TrimSuffix(in, ".fz") + ".out.f32"
		}
		if err := os.WriteFile(out, device.F32Bytes(data), 0o644); err != nil {
			return err
		}
		fmt.Printf("%v: %d values  %.3f GB/s → %s\n", dims, dims.N(),
			metrics.Throughput(4*dims.N(), decSec), out)
		if verbose && report != nil {
			printReport("decompress", report)
		}
		return nil
	}
	return fmt.Errorf("one of -z, -d, -probe is required")
}

// printReport summarizes an executor report: graph shape, observed stage
// overlap, and buffer-pool reuse.
func printReport(phase string, r *core.ExecReport) {
	fmt.Printf("%s executor: %d tasks, critical path %d, overlapped %v\n",
		phase, r.Tasks, r.CriticalPath, r.Overlapped())
	fmt.Printf("  buffer pool: %d gets, %d hits (%.0f%% hit rate)\n",
		r.Pool.Gets, r.Pool.Hits, 100*r.Pool.HitRate())
}

// pipelineByName resolves preset names; auto objectives return nil so the
// caller runs data-driven selection.
func pipelineByName(name string) (*core.Pipeline, error) {
	switch name {
	case "default":
		return fzmod.Default(), nil
	case "speed":
		return fzmod.Speed(), nil
	case "quality":
		return fzmod.QualityPipeline(), nil
	case "auto", "auto-ratio", "auto-throughput":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown pipeline %q (want default, speed, quality, auto, auto-ratio, auto-throughput)", name)
	}
}

func parseDims(s string) (grid.Dims, error) {
	if s == "" {
		return grid.Dims{}, fmt.Errorf("missing -dims")
	}
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) < 1 || len(parts) > 3 {
		return grid.Dims{}, fmt.Errorf("bad -dims %q", s)
	}
	vals := [3]int{1, 1, 1}
	for i, ps := range parts {
		v, err := strconv.Atoi(ps)
		if err != nil || v <= 0 {
			return grid.Dims{}, fmt.Errorf("bad -dims component %q", ps)
		}
		vals[i] = v
	}
	return grid.Dims{X: vals[0], Y: vals[1], Z: vals[2]}, nil
}
