package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fzmod/internal/device"
	"fzmod/internal/fzio"
	"fzmod/internal/grid"
	"fzmod/internal/sdrbench"
)

// writeField generates a small deterministic field and writes it as raw
// little-endian float32 to a temp file, returning path, dims and data.
func writeField(t *testing.T) (string, grid.Dims, []float32) {
	t.Helper()
	dims := grid.D3(16, 16, 12)
	data := sdrbench.GenNYX(dims, 5)
	path := filepath.Join(t.TempDir(), "field.f32")
	if err := os.WriteFile(path, device.F32Bytes(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, dims, data
}

// readF32File reads a raw float32 file back.
func readF32File(t *testing.T, path string) []float32 {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return device.BytesF32(blob)
}

// relAbs resolves a value-range-relative bound against data by hand (the
// CLI streaming path only accepts absolute bounds).
func relAbs(data []float32, rel float64) float64 {
	mn, mx := data[0], data[0]
	for _, v := range data {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return rel * float64(mx-mn)
}

func maxAbsDiff(a, b []float32) float64 {
	m := 0.0
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// TestCLIRoundtripFiles: compress → probe → decompress over temp files,
// the everyday CLI flow.
func TestCLIRoundtripFiles(t *testing.T) {
	in, dims, data := writeField(t)
	fz := filepath.Join(t.TempDir(), "field.fz")
	var out bytes.Buffer
	err := run(config{
		compress: true, in: in, out: fz,
		dims: "16x16x12", eb: 1e-3, mode: "rel",
		pipeline: "default", verify: true, verbose: true,
		stdout: &out,
	})
	if err != nil {
		t.Fatalf("compress: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "CR ") || !strings.Contains(out.String(), "verify: PSNR") {
		t.Errorf("compress output missing stats/verify: %q", out.String())
	}

	out.Reset()
	if err := run(config{probe: true, in: fz, stdout: &out}); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if !strings.Contains(out.String(), "fzmod-default") || !strings.Contains(out.String(), "16x16x12") {
		t.Errorf("probe output: %q", out.String())
	}

	back := filepath.Join(t.TempDir(), "back.f32")
	out.Reset()
	if err := run(config{decompress: true, in: fz, out: back, stdout: &out}); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	got := readF32File(t, back)
	if len(got) != dims.N() {
		t.Fatalf("decompressed %d values, want %d", len(got), dims.N())
	}
	// rel 1e-3 resolves against the NYX value range; the reconstruction
	// must respect the resolved absolute bound.
	if absEB, d := relAbs(data, 1e-3), maxAbsDiff(data, got); d > absEB {
		t.Errorf("bound %g violated: max abs diff %g", absEB, d)
	}
}

// TestCLIStreamRoundtripFiles: -stream compression to a file, stream
// probe, then decompression (flavor detected from the magic).
func TestCLIStreamRoundtripFiles(t *testing.T) {
	in, dims, data := writeField(t)
	absEB := relAbs(data, 1e-3)
	fzs := filepath.Join(t.TempDir(), "field.fzs")
	var out bytes.Buffer
	err := run(config{
		compress: true, stream: true, in: in, out: fzs,
		dims: "16x16x12", eb: absEB, mode: "abs",
		pipeline: "default", chunk: 16 * 16 * 3, window: 2,
		stdout: &out,
	})
	if err != nil {
		t.Fatalf("stream compress: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "(stream)") {
		t.Errorf("stream compress output: %q", out.String())
	}

	out.Reset()
	if err := run(config{probe: true, in: fzs, stdout: &out}); err != nil {
		t.Fatalf("stream probe: %v", err)
	}
	if !strings.Contains(out.String(), "(stream)") || !strings.Contains(out.String(), "trailer verified") {
		t.Errorf("stream probe output: %q", out.String())
	}

	back := filepath.Join(t.TempDir(), "back.f32")
	out.Reset()
	if err := run(config{decompress: true, in: fzs, out: back, window: 2, stdout: &out}); err != nil {
		t.Fatalf("stream decompress: %v", err)
	}
	got := readF32File(t, back)
	if len(got) != dims.N() {
		t.Fatalf("decompressed %d values, want %d", len(got), dims.N())
	}
	if d := maxAbsDiff(data, got); d > absEB {
		t.Errorf("abs bound %g violated: max diff %g", absEB, d)
	}
}

// TestCLIStreamPipe drives compression and decompression through an
// in-process pipe: compressor reads the field file and writes the stream
// to stdout; decompressor reads it from stdin and writes stdout — the
// shell-pipeline topology, no intermediate file.
func TestCLIStreamPipe(t *testing.T) {
	in, dims, data := writeField(t)
	absEB := relAbs(data, 1e-3)
	pr, pw := io.Pipe()
	compErr := make(chan error, 1)
	go func() {
		err := run(config{
			compress: true, stream: true, in: in, out: "-",
			dims: "16x16x12", eb: absEB, mode: "abs",
			pipeline: "default", chunk: 16 * 16 * 3, window: 2,
			stdout: pw,
		})
		pw.CloseWithError(err)
		compErr <- err
	}()

	var field bytes.Buffer
	err := run(config{
		decompress: true, in: "-", out: "-", window: 2,
		stdin: pr, stdout: &field,
	})
	if cerr := <-compErr; cerr != nil {
		t.Fatalf("pipe compress: %v", cerr)
	}
	if err != nil {
		t.Fatalf("pipe decompress: %v", err)
	}
	got := device.BytesF32(field.Bytes())
	if len(got) != dims.N() {
		t.Fatalf("piped roundtrip produced %d values, want %d", len(got), dims.N())
	}
	if d := maxAbsDiff(data, got); d > absEB {
		t.Errorf("abs bound %g violated through pipe: max diff %g", absEB, d)
	}
}

// TestCLIRegionRead: -d -region extracts a subvolume from a chunked
// container and the values match slicing the full decompression.
func TestCLIRegionRead(t *testing.T) {
	in, dims, _ := writeField(t)
	fz := filepath.Join(t.TempDir(), "field.fz")
	if err := run(config{
		compress: true, in: in, out: fz,
		dims: "16x16x12", eb: 1e-3, mode: "rel",
		pipeline: "default", chunk: 16 * 16 * 3, // 4 slab chunks
		stdout: io.Discard,
	}); err != nil {
		t.Fatalf("compress: %v", err)
	}

	full := filepath.Join(t.TempDir(), "full.f32")
	if err := run(config{decompress: true, in: fz, out: full, stdout: io.Discard}); err != nil {
		t.Fatalf("full decompress: %v", err)
	}
	want := readF32File(t, full)

	sub := filepath.Join(t.TempDir(), "sub.f32")
	var out bytes.Buffer
	if err := run(config{
		decompress: true, region: "2:10,4:12,7:9", in: fz, out: sub,
		verbose: true, stdout: &out,
	}); err != nil {
		t.Fatalf("region decompress: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "region 2:10,4:12,7:9") ||
		!strings.Contains(out.String(), "chunks decoded") {
		t.Errorf("region output: %q", out.String())
	}
	got := readF32File(t, sub)
	if len(got) != 8*8*2 {
		t.Fatalf("region produced %d values, want %d", len(got), 8*8*2)
	}
	i := 0
	for z := 7; z < 9; z++ {
		for y := 4; y < 12; y++ {
			for x := 2; x < 10; x++ {
				if got[i] != want[dims.Idx(x, y, z)] {
					t.Fatalf("region value (%d,%d,%d) = %g, full decompress has %g", x, y, z, got[i], want[dims.Idx(x, y, z)])
				}
				i++
			}
		}
	}

	// Trailing axes may be omitted: one range selects x-planes of the
	// whole y×z extent.
	if err := run(config{
		decompress: true, region: "0:4", in: fz, out: sub, stdout: io.Discard,
	}); err != nil {
		t.Fatalf("partial region syntax: %v", err)
	}
	if got := readF32File(t, sub); len(got) != 4*dims.Y*dims.Z {
		t.Errorf("x-only region produced %d values, want %d", len(got), 4*dims.Y*dims.Z)
	}
}

// TestCLIErrors: the CLI surfaces usage errors instead of panicking.
func TestCLIErrors(t *testing.T) {
	in, _, _ := writeField(t)
	cases := map[string]config{
		"no action":         {in: in},
		"no input":          {compress: true},
		"bad dims":          {compress: true, in: in, dims: "axb", eb: 1e-3, mode: "rel", pipeline: "default"},
		"bad mode":          {compress: true, in: in, dims: "16x16x12", eb: 1e-3, mode: "nope", pipeline: "default"},
		"bad pipeline":      {compress: true, in: in, dims: "16x16x12", eb: 1e-3, mode: "rel", pipeline: "nope"},
		"stream rel bound":  {compress: true, stream: true, in: in, dims: "16x16x12", eb: 1e-3, mode: "rel", pipeline: "default"},
		"stream auto":       {compress: true, stream: true, in: in, dims: "16x16x12", eb: 1, mode: "abs", pipeline: "auto"},
		"stdin without -":   {compress: true, in: "-", dims: "16x16x12", eb: 1e-3, mode: "rel", pipeline: "default"},
		"missing file":      {decompress: true, in: filepath.Join(t.TempDir(), "absent.fz")},
		"region without -d": {compress: true, region: "0:4", in: in, dims: "16x16x12", eb: 1e-3, mode: "rel", pipeline: "default"},
		"region on stdin":   {decompress: true, region: "0:4", in: "-"},
		"region bad syntax": {decompress: true, region: "0-4", in: in},
		"region bad range":  {decompress: true, region: "whole", in: in},
		"not a container":   {decompress: true, in: in},
		"probe not a cont.": {probe: true, in: in},
	}
	// A regular-file input whose size disagrees with -dims must be
	// rejected up front, not silently truncated to the declared geometry.
	cases["stream size mismatch"] = config{
		compress: true, stream: true, in: in,
		dims: "32x32x32", eb: 1, mode: "abs", pipeline: "default",
	}
	for name, cfg := range cases {
		cfg.stdout = io.Discard
		if cfg.stdin == nil {
			cfg.stdin = strings.NewReader("")
		}
		if err := run(cfg); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

// TestCLINoPartialOutputOnFailure: a failed streaming run must not leave a
// truncated artifact on disk.
func TestCLINoPartialOutputOnFailure(t *testing.T) {
	in, _, data := writeField(t)
	absEB := relAbs(data, 1e-3)
	fzs := filepath.Join(t.TempDir(), "field.fzs")
	if err := run(config{
		compress: true, stream: true, in: in, out: fzs,
		dims: "16x16x12", eb: absEB, mode: "abs", pipeline: "default",
		chunk: 16 * 16 * 3, stdout: io.Discard,
	}); err != nil {
		t.Fatal(err)
	}
	// Truncate the stream and decompress: the run must fail AND the output
	// file must be gone.
	blob, err := os.ReadFile(fzs)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.fzs")
	if err := os.WriteFile(trunc, blob[:len(blob)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	back := filepath.Join(t.TempDir(), "back.f32")
	if err := run(config{decompress: true, in: trunc, out: back, stdout: io.Discard}); err == nil {
		t.Fatal("truncated stream should fail")
	}
	if _, err := os.Stat(back); !os.IsNotExist(err) {
		t.Errorf("partial output left behind: stat err %v", err)
	}
}

// TestCLIVerifyAndSalvage: the integrity-audit flow end to end — a clean
// artifact verifies OK; one flipped payload byte makes -verify exit
// nonzero naming the damaged chunk; -salvage rebuilds a valid container
// from the survivors that round-trips through a normal decompress.
func TestCLIVerifyAndSalvage(t *testing.T) {
	in, dims, _ := writeField(t)
	fz := filepath.Join(t.TempDir(), "field.fzc")
	if err := run(config{
		compress: true, in: in, out: fz,
		dims: "16x16x12", eb: 1e-3, mode: "rel",
		pipeline: "default", chunk: 16 * 16 * 3, // 4 slab chunks
		stdout: io.Discard,
	}); err != nil {
		t.Fatalf("compress: %v", err)
	}

	var out bytes.Buffer
	if err := run(config{verifyArtifact: true, in: fz, stdout: &out}); err != nil {
		t.Fatalf("verify of a clean artifact: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "root verified") || !strings.Contains(out.String(), "OK (4/4 chunks intact)") {
		t.Errorf("clean verify output: %q", out.String())
	}

	// Flip one payload byte of chunk 2.
	blob, err := os.ReadFile(fz)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := fzio.FetchIndex(fzio.NewBytesFetcher(blob))
	if err != nil {
		t.Fatal(err)
	}
	blob[ix.Chunks[2].Offset+7] ^= 0x08
	damaged := filepath.Join(t.TempDir(), "damaged.fzc")
	if err := os.WriteFile(damaged, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	err = run(config{verifyArtifact: true, in: damaged, stdout: &out})
	if err == nil {
		t.Fatalf("verify of a damaged artifact succeeded:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "chunk 2") {
		t.Errorf("verify error does not name the damaged chunk: %v", err)
	}
	if !strings.Contains(out.String(), "chunk 2   corrupt") {
		t.Errorf("verify output: %q", out.String())
	}

	// Salvage: survivors rebuilt into a valid container that verifies and
	// decompresses normally.
	recovered := filepath.Join(t.TempDir(), "recovered.fzc")
	out.Reset()
	if err := run(config{salvage: true, in: damaged, out: recovered, stdout: &out}); err != nil {
		t.Fatalf("salvage: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "salvaged 3/4 chunks") || !strings.Contains(out.String(), "lost chunk 2") {
		t.Errorf("salvage output: %q", out.String())
	}
	out.Reset()
	if err := run(config{verifyArtifact: true, in: recovered, stdout: &out}); err != nil {
		t.Fatalf("verify of the salvaged artifact: %v\n%s", err, out.String())
	}
	back := filepath.Join(t.TempDir(), "back.f32")
	if err := run(config{decompress: true, in: recovered, out: back, stdout: io.Discard}); err != nil {
		t.Fatalf("decompressing the salvaged artifact: %v", err)
	}
	if got := readF32File(t, back); len(got) != 16*16*9 {
		t.Errorf("salvaged decode has %d values, want %d (9 surviving planes)", len(got), 16*16*9)
	}
	_ = dims
}

// A proof-checked region read over a CRC-collision-tampered store must
// refuse with the proof error, not a CRC or decode error.
func TestCLIRegionProofs(t *testing.T) {
	in, _, _ := writeField(t)
	fz := filepath.Join(t.TempDir(), "field.fzc")
	if err := run(config{
		compress: true, in: in, out: fz,
		dims: "16x16x12", eb: 1e-3, mode: "rel",
		pipeline: "default", chunk: 16 * 16 * 3,
		stdout: io.Discard,
	}); err != nil {
		t.Fatalf("compress: %v", err)
	}
	blob, err := os.ReadFile(fz)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := fzio.FetchIndex(fzio.NewBytesFetcher(blob))
	if err != nil {
		t.Fatal(err)
	}
	ref := ix.Chunks[1]
	if !fzio.CorruptPreservingCRC32(blob[ref.Offset:ref.Offset+ref.Length], 3) {
		t.Fatal("could not build a CRC-preserving tamper")
	}
	tampered := filepath.Join(t.TempDir(), "tampered.fzc")
	if err := os.WriteFile(tampered, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(t.TempDir(), "sub.f32")
	err = run(config{
		decompress: true, region: "0:16,0:16,0:12", proofs: true,
		in: tampered, out: sub, stdout: io.Discard,
	})
	if err == nil {
		t.Fatal("proof-checked read of a tampered store succeeded")
	}
	if !errors.Is(err, fzio.ErrProofMismatch) {
		t.Fatalf("got %v, want ErrProofMismatch", err)
	}
	// -proofs outside a region read is a usage error.
	if err := run(config{decompress: true, proofs: true, in: fz, out: sub, stdout: io.Discard}); err == nil {
		t.Fatal("-proofs without -region accepted")
	}
}
