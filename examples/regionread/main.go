// Command regionread demonstrates random-access region reads over remote
// chunk storage: it compresses a 256³ synthetic field into a chunked
// container on disk, serves that file over HTTP from a local listener,
// and then reads three subvolumes through the HTTP range-request fetcher —
// fetching and decoding only the slab chunks each selection intersects,
// with decoded slabs shared across reads through an in-memory cache.
//
//	go run ./examples/regionread [-n 256]
//
// The output shows, per read, how many chunks the selection touched, how
// many were actually fetched+decoded versus served from the slab cache,
// and what fraction of the container's bytes travelled over the wire.
// See docs/FORMAT.md for the container layout that makes the index
// fetchable without reading the payload.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"fzmod"
)

func main() {
	n := flag.Int("n", 256, "field extent per axis")
	flag.Parse()

	platform := fzmod.NewPlatform()
	dims := fzmod.Dims3(*n, *n, *n)
	data := make([]float32, dims.N())
	for z := 0; z < dims.Z; z++ {
		for y := 0; y < dims.Y; y++ {
			for x := 0; x < dims.X; x++ {
				v := math.Sin(float64(x)/19) * math.Cos(float64(y)/23) * math.Sin(float64(z)/29)
				data[dims.Idx(x, y, z)] = float32(v)
			}
		}
	}

	// Eight slab chunks along z, written to disk as one FZMC container.
	blob, err := fzmod.Default().CompressChunked(platform, data, dims, fzmod.Rel(1e-4),
		fzmod.ChunkOpts{ChunkElems: dims.X * dims.Y * (dims.Z / 8)})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "regionread")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "field.fz")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("container: %v field → %d chunks, %d bytes (%s)\n",
		dims, 8, len(blob), path)

	// Serve the container over HTTP. http.FileServer honors Range
	// requests, which is all the fetcher needs.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: http.FileServer(http.Dir(dir))}
	go srv.Serve(ln)
	defer srv.Close()
	url := fmt.Sprintf("http://%s/field.fz", ln.Addr())
	fmt.Printf("serving:   %s\n\n", url)

	// One region reader, one shared slab cache: repeated reads of the
	// same slabs are served locally instead of re-fetched.
	cache := fzmod.NewSlabCache(256 << 20)
	region, err := fzmod.OpenRegion(platform, fzmod.NewHTTPFetcher(url, nil),
		fzmod.RegionOpts{Cache: cache})
	if err != nil {
		log.Fatal(err)
	}

	slab := dims.Z / 8
	sels := []struct {
		name string
		sel  fzmod.RegionSel
	}{
		// Interior of a single chunk: 1 of 8 chunks fetched.
		{"chunk interior", fzmod.RegionSel{
			X0: dims.X / 4, X1: 3 * dims.X / 4,
			Y0: dims.Y / 4, Y1: 3 * dims.Y / 4,
			Z0: 2*slab + 2, Z1: 3*slab - 2}},
		// Spans a slab boundary: two chunks, one already cached.
		{"slab boundary", fzmod.RegionSel{
			X0: 0, X1: dims.X,
			Y0: 0, Y1: dims.Y,
			Z0: 3*slab - 4, Z1: 3*slab + 4}},
		// Re-read of the first selection: pure cache hit, zero fetches.
		{"repeat read", fzmod.RegionSel{
			X0: dims.X / 4, X1: 3 * dims.X / 4,
			Y0: dims.Y / 4, Y1: 3 * dims.Y / 4,
			Z0: 2*slab + 2, Z1: 3*slab - 2}},
	}

	for _, s := range sels {
		t0 := time.Now()
		vals, report, err := region.ReadReport(s.sel)
		if err != nil {
			log.Fatal(err)
		}
		rs := report.Region
		// Every returned value must match the original within the bound.
		if i := fzmod.VerifyBound(sliceRegion(data, dims, s.sel), vals, regionEB(region)); i != -1 {
			log.Fatalf("%s: bound violated at %d", s.name, i)
		}
		fmt.Printf("%-15s %s: %7d values in %6.1fms — %d chunk(s), %d decoded, %d cached, %d bytes fetched (%.1f%% of container)\n",
			s.name, s.sel, len(vals), 1e3*time.Since(t0).Seconds(),
			rs.Chunks, rs.Decoded, rs.CacheHits, rs.PayloadBytes,
			100*float64(rs.PayloadBytes)/float64(len(blob)))
	}

	st := cache.Stats()
	fmt.Printf("\nslab cache: %d hits / %d lookups (%.0f%% hit rate), %d slabs resident (%d bytes)\n",
		st.Hits, st.Hits+st.Misses, 100*float64(st.Hits)/float64(st.Hits+st.Misses),
		st.Entries, st.Bytes)
}

// sliceRegion extracts sel from the original field for verification.
func sliceRegion(data []float32, dims fzmod.Dims, sel fzmod.RegionSel) []float32 {
	out := make([]float32, 0, sel.Dims().N())
	for z := sel.Z0; z < sel.Z1; z++ {
		for y := sel.Y0; y < sel.Y1; y++ {
			row := dims.Idx(sel.X0, y, z)
			out = append(out, data[row:row+sel.X1-sel.X0]...)
		}
	}
	return out
}

// regionEB returns the container's resolved absolute error bound.
func regionEB(r *fzmod.Region) float64 { return r.Index().Header.EB }
