// Cosmology: rate–distortion exploration on a Nyx-like baryon-density
// field — the Figure 4 workflow as a library user would run it. The
// example sweeps error bounds for FZMod-Quality and two baselines and
// prints (bitrate, PSNR) series, then demonstrates the overall-speedup
// model (Eq. 1) for choosing a compressor under a given link bandwidth.
package main

import (
	"fmt"
	"log"
	"time"

	"fzmod"
	"fzmod/internal/baseline/cuszp2"
	"fzmod/internal/baseline/pfpl"
	"fzmod/internal/core"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

func main() {
	dims := fzmod.Dims3(96, 96, 96)
	data := sdrbench.GenNYX(dims, 7)
	platform := fzmod.NewPlatform()

	compressors := []core.Compressor{
		fzmod.QualityPipeline(),
		pfpl.Compressor{},
		cuszp2.Compressor{},
	}

	fmt.Printf("Nyx-like field %v (%.1f MB): rate-distortion sweep\n\n",
		dims, float64(4*dims.N())/1e6)
	for _, c := range compressors {
		fmt.Printf("%-16s", c.Name())
		for _, eb := range []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5} {
			blob, err := c.Compress(platform, data, dims, preprocess.RelBound(eb))
			if err != nil {
				log.Fatalf("%s: %v", c.Name(), err)
			}
			back, _, err := c.Decompress(platform, blob)
			if err != nil {
				log.Fatalf("%s: %v", c.Name(), err)
			}
			q, err := fzmod.Evaluate(platform, data, back)
			if err != nil {
				log.Fatal(err)
			}
			bitrate := float64(len(blob)) * 8 / float64(dims.N())
			fmt.Printf("  (%5.2f b/v, %5.1f dB)", bitrate, q.PSNR)
		}
		fmt.Println()
	}

	// Eq. 1: which compressor moves this snapshot fastest end to end over
	// the paper's two measured node bandwidths?
	fmt.Println("\nOverall speedup (Eq. 1) at eb 1e-4:")
	fmt.Printf("%-16s %12s %12s %14s %14s\n", "compressor", "CR", "comp GB/s", "H100 (35.7)", "V100 (6.91)")
	for _, c := range compressors {
		t0 := time.Now()
		blob, err := c.Compress(platform, data, dims, preprocess.RelBound(1e-4))
		sec := time.Since(t0).Seconds()
		if err != nil {
			log.Fatal(err)
		}
		cr := fzmod.CompressionRatio(4*dims.N(), len(blob))
		thr := float64(4*dims.N()) / sec / 1e9
		fmt.Printf("%-16s %11.1fx %12.3f %14.2f %14.2f\n", c.Name(), cr, thr,
			fzmod.OverallSpeedup(thr, 35.7, cr), fzmod.OverallSpeedup(thr, 6.91, cr))
	}
	fmt.Println("\nWith a slow link (V100 column) the high-ratio compressor wins even")
	fmt.Println("at lower throughput; with a fast link raw speed matters more (§4.3.2).")
}
