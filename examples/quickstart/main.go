// Quickstart: compress a synthetic 3-D field with the default pipeline,
// decompress it, and verify the error bound — the 30-line happy path of
// the public API.
package main

import (
	"fmt"
	"log"
	"math"

	"fzmod"
)

func main() {
	// A smooth 64³ field, standing in for one simulation variable.
	dims := fzmod.Dims3(64, 64, 64)
	data := make([]float32, dims.N())
	for z := 0; z < dims.Z; z++ {
		for y := 0; y < dims.Y; y++ {
			for x := 0; x < dims.X; x++ {
				v := math.Sin(0.1*float64(x))*math.Cos(0.07*float64(y)) + 0.5*math.Sin(0.05*float64(z))
				data[dims.Idx(x, y, z)] = float32(v)
			}
		}
	}

	platform := fzmod.NewPlatform()
	pipeline := fzmod.Default()

	blob, err := pipeline.Compress(platform, data, dims, fzmod.Rel(1e-4))
	if err != nil {
		log.Fatal(err)
	}
	back, _, err := fzmod.Decompress(platform, blob)
	if err != nil {
		log.Fatal(err)
	}

	q, err := fzmod.Evaluate(platform, data, back)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline:   %s\n", pipeline.Describe())
	fmt.Printf("ratio:      %.1fx (%d → %d bytes)\n",
		fzmod.CompressionRatio(4*dims.N(), len(blob)), 4*dims.N(), len(blob))
	fmt.Printf("PSNR:       %.1f dB, max error %.3g\n", q.PSNR, q.MaxAbsErr)
}
