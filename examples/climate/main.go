// Climate: the paper's motivating scenario — a climate-model snapshot
// must be reduced before hitting storage. The example compares the three
// preset pipelines (and the secondary-encoder variant) on a CESM-ATM-like
// field across the paper's three error bounds, printing the
// ratio/throughput/quality trade each pipeline makes so a domain user can
// pick one.
package main

import (
	"fmt"
	"log"
	"time"

	"fzmod"
	"fzmod/internal/sdrbench"
)

func main() {
	dims := fzmod.Dims3(256, 128, 8)
	data := sdrbench.GenCESM(dims, 2026)
	platform := fzmod.NewPlatform()

	pipelines := fzmod.Presets()
	pipelines = append(pipelines, fzmod.WithZstdSlot(fzmod.Default()))

	fmt.Printf("CESM-ATM-like field %v (%.1f MB)\n\n", dims, float64(4*dims.N())/1e6)
	fmt.Printf("%-20s %-8s %10s %12s %10s %12s\n",
		"pipeline", "eb", "ratio", "comp GB/s", "PSNR dB", "max err")
	for _, eb := range []float64{1e-2, 1e-4, 1e-6} {
		for _, pl := range pipelines {
			t0 := time.Now()
			blob, err := pl.Compress(platform, data, dims, fzmod.Rel(eb))
			sec := time.Since(t0).Seconds()
			if err != nil {
				log.Fatalf("%s: %v", pl.Name(), err)
			}
			back, _, err := fzmod.Decompress(platform, blob)
			if err != nil {
				log.Fatalf("%s: %v", pl.Name(), err)
			}
			q, err := fzmod.Evaluate(platform, data, back)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-20s %-8.0e %9.1fx %12.3f %10.1f %12.3g\n",
				pl.Name(), eb,
				fzmod.CompressionRatio(4*dims.N(), len(blob)),
				float64(4*dims.N())/sec/1e9,
				q.PSNR, q.MaxAbsErr)
		}
		fmt.Println()
	}
	fmt.Println("Reading the table: -speed buys throughput with ratio, -quality buys")
	fmt.Println("ratio/PSNR with throughput, -default sits between (paper §3.3).")
}
