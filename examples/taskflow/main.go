// Taskflow: the experimental STF pipeline of §3.3.1. The example
// compresses a field through the task-graph constructor, prints the
// inferred DAG in Graphviz dot syntax, then decompresses through the STF
// path and shows the execution trace — including the paper's flagship
// concurrency: outlier population on the accelerator overlapping Huffman
// decoding on the host.
package main

import (
	"fmt"
	"log"

	"fzmod"
	"fzmod/internal/core"
	"fzmod/internal/device"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

func main() {
	dims := fzmod.Dims3(128, 128, 32)
	data := sdrbench.GenHURR(dims, 3)
	platform := fzmod.NewPlatform()

	absEB, _, err := preprocess.Resolve(platform, device.Accel, data, fzmod.Rel(1e-4))
	if err != nil {
		log.Fatal(err)
	}

	blob, compReport, err := core.CompressSTF(platform, data, dims, absEB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Compression task graph (predict → {histogram ∥ outlier-serialize} → huffman):")
	fmt.Println(compReport.DOT)

	back, _, decReport, err := core.DecompressSTF(platform, blob)
	if err != nil {
		log.Fatal(err)
	}
	if i := fzmod.VerifyBound(data, back, absEB); i != -1 {
		log.Fatalf("bound violated at %d", i)
	}

	fmt.Println("Decompression task graph ({huffman-decode ∥ outlier-populate} → reconstruct):")
	fmt.Println(decReport.DOT)

	fmt.Println("Execution trace:")
	for _, tr := range decReport.Trace {
		fmt.Printf("  %-18s @%-6s %8.2f ms (start +%.2f ms)\n",
			tr.Name, tr.Place,
			tr.End.Sub(tr.Start).Seconds()*1e3,
			tr.Start.Sub(decReport.Trace[0].Start).Seconds()*1e3)
	}
	fmt.Printf("branches overlapped: %v\n", decReport.Overlapped())
	fmt.Printf("buffer pool: %d gets, %.0f%% hit rate\n",
		decReport.Pool.Gets, 100*decReport.Pool.HitRate())
	fmt.Printf("ratio: %.1fx, bound verified at eb=%g\n",
		fzmod.CompressionRatio(4*dims.N(), len(blob)), absEB)
}
