// Autoselect: the module auto-selection mechanism the paper lists as
// future work (§5, item 3), implemented over the framework's registry.
// The example profiles each synthetic dataset, shows which pipeline the
// selector composes under each objective, and compares the auto-selected
// pipeline against the three fixed presets.
package main

import (
	"fmt"
	"log"

	"fzmod"
	"fzmod/internal/core"
	"fzmod/internal/grid"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

func main() {
	platform := fzmod.NewPlatform()
	eb := preprocess.RelBound(1e-3)

	for _, ds := range sdrbench.All() {
		dims := grid.D3(64, 64, 16)
		if ds == sdrbench.HACC {
			dims = grid.D1(1 << 17)
		}
		data := sdrbench.Generate(ds, dims, 99)

		fmt.Printf("== %s %v ==\n", ds, dims)
		for _, obj := range []core.Objective{core.Balanced, core.MaxThroughput, core.MaxRatio} {
			pl, prof, err := core.AutoSelect(platform, data, dims, eb, obj)
			if err != nil {
				log.Fatal(err)
			}
			blob, err := pl.Compress(platform, data, dims, eb)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-15s → %-24s CR %6.1f  (delta %.2f quanta, spline adv %.2fx, zero %.0f%%)\n",
				obj, pl.Name(),
				fzmod.CompressionRatio(4*dims.N(), len(blob)),
				prof.DeltaQuanta, prof.SplineAdvantage, 100*prof.ZeroDeltaFrac)
		}
		// Reference: the fixed presets on the same data.
		for _, pl := range fzmod.Presets() {
			blob, err := pl.Compress(platform, data, dims, eb)
			if err != nil {
				fmt.Printf("  preset %-22s (rejected: %v)\n", pl.Name(), err)
				continue
			}
			fmt.Printf("  preset %-22s CR %6.1f\n", pl.Name(),
				fzmod.CompressionRatio(4*dims.N(), len(blob)))
		}
		fmt.Println()
	}
}
