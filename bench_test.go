// Benchmarks regenerating the paper's evaluation, one group per table or
// figure (see DESIGN.md's experiment index), plus per-module
// micro-benchmarks for the substrate layers. Run:
//
//	go test -bench=. -benchmem
//
// Shapes, not absolute numbers, are the reproduction target: these run on
// a simulated accelerator, not the paper's H100/V100 testbed.
package fzmod_test

import (
	"fmt"
	"testing"

	"fzmod"
	"fzmod/internal/baseline/cuzfp"
	"fzmod/internal/bench"
	"fzmod/internal/core"
	"fzmod/internal/device"
	"fzmod/internal/encoder/fzg"
	"fzmod/internal/encoder/huffman"
	"fzmod/internal/encoder/lzr"
	"fzmod/internal/histogram"
	"fzmod/internal/metrics"
	"fzmod/internal/predictor/lorenzo"
	"fzmod/internal/predictor/spline"
	"fzmod/internal/preprocess"
	"fzmod/internal/sdrbench"
)

var benchPlatform = device.NewH100Platform()

// reportThroughput attaches GB/s to a benchmark moving n input bytes per
// iteration.
func reportThroughput(b *testing.B, bytes int) {
	b.SetBytes(int64(bytes))
}

// --- E1: Table 3 (compression ratios) ---------------------------------

// BenchmarkTable3 measures one compression per (dataset, compressor) at
// the paper's middle bound and reports the achieved ratio as a custom
// metric, regenerating Table 3's rows under `go test -bench`.
func BenchmarkTable3(b *testing.B) {
	for _, ds := range sdrbench.All() {
		data, dims := bench.Data(ds, bench.Small)
		for _, c := range bench.Compressors() {
			b.Run(fmt.Sprintf("%s/%s", ds, c.Name()), func(b *testing.B) {
				reportThroughput(b, 4*dims.N())
				var cr float64
				for i := 0; i < b.N; i++ {
					blob, err := c.Compress(benchPlatform, data, dims, preprocess.RelBound(1e-4))
					if err != nil {
						b.Skipf("compressor rejected setting: %v", err)
					}
					cr = metrics.CompressionRatio(4*dims.N(), len(blob))
				}
				b.ReportMetric(cr, "ratio")
			})
		}
	}
}

// --- E2: Figure 1 (compression / decompression throughput) ------------

func BenchmarkFig1Compression(b *testing.B) {
	for _, ds := range sdrbench.All() {
		data, dims := bench.Data(ds, bench.Small)
		for _, c := range bench.GPUCompressors() {
			b.Run(fmt.Sprintf("%s/%s", ds, c.Name()), func(b *testing.B) {
				reportThroughput(b, 4*dims.N())
				for i := 0; i < b.N; i++ {
					if _, err := c.Compress(benchPlatform, data, dims, preprocess.RelBound(1e-4)); err != nil {
						b.Skipf("compressor rejected setting: %v", err)
					}
				}
			})
		}
	}
}

func BenchmarkFig1Decompression(b *testing.B) {
	for _, ds := range sdrbench.All() {
		data, dims := bench.Data(ds, bench.Small)
		for _, c := range bench.GPUCompressors() {
			blob, err := c.Compress(benchPlatform, data, dims, preprocess.RelBound(1e-4))
			if err != nil {
				continue
			}
			b.Run(fmt.Sprintf("%s/%s", ds, c.Name()), func(b *testing.B) {
				reportThroughput(b, 4*dims.N())
				for i := 0; i < b.N; i++ {
					if _, _, err := c.Decompress(benchPlatform, blob); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- E3/E4: Figures 2 and 3 (overall speedup, Eq. 1) ------------------

func benchSpeedup(b *testing.B, p *device.Platform) {
	bw := p.LinkBandwidth / 1e9
	for _, ds := range sdrbench.All() {
		data, dims := bench.Data(ds, bench.Small)
		for _, c := range bench.GPUCompressors() {
			b.Run(fmt.Sprintf("%s/%s", ds, c.Name()), func(b *testing.B) {
				var speedup float64
				for i := 0; i < b.N; i++ {
					r := bench.RunOne(p, c, data, dims, 1e-4)
					if r.CompErr != nil {
						b.Skipf("compressor rejected setting: %v", r.CompErr)
					}
					speedup = metrics.OverallSpeedup(r.CompGBs, bw, r.CR)
				}
				b.ReportMetric(speedup, "speedup")
			})
		}
	}
}

func BenchmarkFig2SpeedupH100(b *testing.B) { benchSpeedup(b, device.NewH100Platform()) }
func BenchmarkFig3SpeedupV100(b *testing.B) { benchSpeedup(b, device.NewV100Platform()) }

// --- E5: Figure 4 (rate–distortion) ------------------------------------

func BenchmarkFig4RateDistortion(b *testing.B) {
	data, dims := bench.Data(sdrbench.NYX, bench.Small)
	for _, c := range bench.Compressors() {
		for _, eb := range []float64{1e-2, 1e-4} {
			b.Run(fmt.Sprintf("%s/eb=%.0e", c.Name(), eb), func(b *testing.B) {
				var br, psnr float64
				for i := 0; i < b.N; i++ {
					r := bench.RunOne(benchPlatform, c, data, dims, eb)
					if r.CompErr != nil {
						b.Skipf("compressor rejected setting: %v", r.CompErr)
					}
					br, psnr = r.Bitrate, r.PSNR
				}
				b.ReportMetric(br, "bits/val")
				b.ReportMetric(psnr, "PSNR-dB")
			})
		}
	}
}

// --- E6: STF ablation (§3.3.1) -----------------------------------------

func BenchmarkSTFAblation(b *testing.B) {
	data, dims := bench.Data(sdrbench.CESM, bench.Small)
	blob, err := core.NewDefault().Compress(benchPlatform, data, dims, preprocess.RelBound(1e-4))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		reportThroughput(b, 4*dims.N())
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Decompress(benchPlatform, blob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("taskflow", func(b *testing.B) {
		reportThroughput(b, 4*dims.N())
		for i := 0; i < b.N; i++ {
			if _, _, _, err := core.DecompressSTF(benchPlatform, blob); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E7: histogram ablation (§3.2) --------------------------------------

func BenchmarkHistogramAblation(b *testing.B) {
	data, dims := bench.Data(sdrbench.CESM, bench.Small)
	absEB, _, err := preprocess.Resolve(benchPlatform, device.Accel, data, preprocess.RelBound(1e-4))
	if err != nil {
		b.Fatal(err)
	}
	for _, pd := range []struct {
		name string
		pr   core.Predictor
	}{
		{"lorenzo-codes", core.LorenzoPredictor{}},
		{"spline-codes", core.NewQuality().Pred},
	} {
		pred, err := pd.pr.Predict(benchPlatform, device.Accel, data, dims, absEB)
		if err != nil {
			b.Fatal(err)
		}
		bins := 2 * pred.Radius
		b.Run(pd.name+"/standard", func(b *testing.B) {
			reportThroughput(b, 2*len(pred.Codes))
			for i := 0; i < b.N; i++ {
				if _, err := histogram.Standard(benchPlatform, device.Accel, pred.Codes, bins); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(pd.name+"/topk", func(b *testing.B) {
			reportThroughput(b, 2*len(pred.Codes))
			for i := 0; i < b.N; i++ {
				if _, err := histogram.TopK(benchPlatform, device.Accel, pred.Codes, bins, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Module micro-benchmarks --------------------------------------------

func BenchmarkModuleLorenzo(b *testing.B) {
	data, dims := bench.Data(sdrbench.HURR, bench.Small)
	absEB, _, _ := preprocess.Resolve(benchPlatform, device.Accel, data, preprocess.RelBound(1e-4))
	b.Run("encode", func(b *testing.B) {
		reportThroughput(b, 4*dims.N())
		for i := 0; i < b.N; i++ {
			if _, err := lorenzo.Encode(benchPlatform, device.Accel, data, dims, absEB, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	q, _ := lorenzo.Encode(benchPlatform, device.Accel, data, dims, absEB, 0)
	b.Run("decode", func(b *testing.B) {
		reportThroughput(b, 4*dims.N())
		for i := 0; i < b.N; i++ {
			if _, err := lorenzo.Decode(benchPlatform, device.Accel, q, dims, absEB); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkModuleSpline(b *testing.B) {
	data, dims := bench.Data(sdrbench.HURR, bench.Small)
	absEB, _, _ := preprocess.Resolve(benchPlatform, device.Accel, data, preprocess.RelBound(1e-4))
	cfg := spline.Config{Mode: spline.Cubic, TuneOrder: true}
	b.Run("encode", func(b *testing.B) {
		reportThroughput(b, 4*dims.N())
		for i := 0; i < b.N; i++ {
			if _, err := spline.Encode(benchPlatform, device.Accel, data, dims, absEB, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	q, _ := spline.Encode(benchPlatform, device.Accel, data, dims, absEB, cfg)
	b.Run("decode", func(b *testing.B) {
		reportThroughput(b, 4*dims.N())
		for i := 0; i < b.N; i++ {
			if _, err := spline.Decode(benchPlatform, device.Accel, q, dims, absEB); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchCodes(n int) []uint16 {
	data, dims := bench.Data(sdrbench.CESM, bench.Small)
	absEB, _, _ := preprocess.Resolve(benchPlatform, device.Accel, data, preprocess.RelBound(1e-4))
	q, _ := lorenzo.Encode(benchPlatform, device.Accel, data, dims, absEB, 0)
	if n > len(q.Codes) {
		n = len(q.Codes)
	}
	return q.Codes[:n]
}

func BenchmarkModuleHuffman(b *testing.B) {
	codes := benchCodes(1 << 20)
	hist, _ := histogram.Standard(benchPlatform, device.Accel, codes, 1024)
	b.Run("encode", func(b *testing.B) {
		reportThroughput(b, 2*len(codes))
		for i := 0; i < b.N; i++ {
			if _, err := huffman.Compress(benchPlatform, device.Host, codes, hist); err != nil {
				b.Fatal(err)
			}
		}
	})
	blob, _ := huffman.Compress(benchPlatform, device.Host, codes, hist)
	b.Run("decode", func(b *testing.B) {
		reportThroughput(b, 2*len(codes))
		for i := 0; i < b.N; i++ {
			if _, err := huffman.Decompress(benchPlatform, device.Host, blob); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkModuleFZG(b *testing.B) {
	codes := benchCodes(1 << 20)
	b.Run("encode", func(b *testing.B) {
		reportThroughput(b, 2*len(codes))
		for i := 0; i < b.N; i++ {
			fzg.Encode(benchPlatform, device.Accel, codes, 512)
		}
	})
	blob := fzg.Encode(benchPlatform, device.Accel, codes, 512)
	b.Run("decode", func(b *testing.B) {
		reportThroughput(b, 2*len(codes))
		for i := 0; i < b.N; i++ {
			if _, err := fzg.Decode(benchPlatform, device.Accel, blob); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkModuleLZ(b *testing.B) {
	codes := benchCodes(1 << 20)
	src := device.U16Bytes(codes)
	b.Run("compress", func(b *testing.B) {
		reportThroughput(b, len(src))
		for i := 0; i < b.N; i++ {
			lzr.Compress(benchPlatform, device.Host, src)
		}
	})
	blob := lzr.Compress(benchPlatform, device.Host, src)
	b.Run("decompress", func(b *testing.B) {
		reportThroughput(b, len(src))
		for i := 0; i < b.N; i++ {
			if _, err := lzr.Decompress(benchPlatform, device.Host, blob); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Chunked executor: block-parallel vs monolithic ---------------------

// BenchmarkChunkedExecutor compares the monolithic single-stream pipeline
// against the chunked concurrent executor at several worker counts on one
// synthetic field split into 8 slabs.
func BenchmarkChunkedExecutor(b *testing.B) {
	dims := fzmod.Dims3(128, 128, 64)
	data := sdrbench.GenNYX(dims, 77)
	pl := fzmod.Default()
	eb := fzmod.Rel(1e-4)
	chunkElems := dims.N() / 8

	b.Run("compress/monolithic", func(b *testing.B) {
		reportThroughput(b, 4*dims.N())
		for i := 0; i < b.N; i++ {
			if _, err := pl.CompressMonolithic(benchPlatform, data, dims, eb); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 4} {
		opts := fzmod.ChunkOpts{ChunkElems: chunkElems, Workers: workers}
		b.Run(fmt.Sprintf("compress/chunked-w%d", workers), func(b *testing.B) {
			reportThroughput(b, 4*dims.N())
			for i := 0; i < b.N; i++ {
				if _, err := pl.CompressChunked(benchPlatform, data, dims, eb, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	monoBlob, err := pl.CompressMonolithic(benchPlatform, data, dims, eb)
	if err != nil {
		b.Fatal(err)
	}
	chunkedBlob, err := pl.CompressChunked(benchPlatform, data, dims, eb, fzmod.ChunkOpts{ChunkElems: chunkElems})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decompress/monolithic", func(b *testing.B) {
		reportThroughput(b, 4*dims.N())
		for i := 0; i < b.N; i++ {
			if _, _, err := fzmod.Decompress(benchPlatform, monoBlob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decompress/chunked", func(b *testing.B) {
		reportThroughput(b, 4*dims.N())
		for i := 0; i < b.N; i++ {
			if _, _, err := fzmod.Decompress(benchPlatform, chunkedBlob); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEndToEnd runs a full public-API roundtrip per preset pipeline.
func BenchmarkEndToEnd(b *testing.B) {
	data, dims := bench.Data(sdrbench.HURR, bench.Small)
	for _, pl := range fzmod.Presets() {
		b.Run(pl.Name(), func(b *testing.B) {
			reportThroughput(b, 4*dims.N())
			for i := 0; i < b.N; i++ {
				blob, err := pl.Compress(benchPlatform, data, dims, fzmod.Rel(1e-4))
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := fzmod.Decompress(benchPlatform, blob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModuleZFP measures the fixed-rate transform codec extension.
func BenchmarkModuleZFP(b *testing.B) {
	data, dims := bench.Data(sdrbench.HURR, bench.Small)
	c := cuzfp.Compressor{Rate: 8}
	b.Run("encode", func(b *testing.B) {
		reportThroughput(b, 4*dims.N())
		for i := 0; i < b.N; i++ {
			if _, err := c.Compress(benchPlatform, data, dims); err != nil {
				b.Fatal(err)
			}
		}
	})
	blob, err := c.Compress(benchPlatform, data, dims)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decode", func(b *testing.B) {
		reportThroughput(b, 4*dims.N())
		for i := 0; i < b.N; i++ {
			if _, _, err := c.Decompress(benchPlatform, blob); err != nil {
				b.Fatal(err)
			}
		}
	})
}
