package fzmod_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"fzmod"
)

// exampleField synthesizes a smooth 32×32×16 field — the kind of
// autocorrelated data error-bounded compressors are built for.
func exampleField() ([]float32, fzmod.Dims) {
	dims := fzmod.Dims3(32, 32, 16)
	data := make([]float32, dims.N())
	for z := 0; z < dims.Z; z++ {
		for y := 0; y < dims.Y; y++ {
			for x := 0; x < dims.X; x++ {
				v := math.Sin(float64(x)/7) * math.Cos(float64(y)/9) * (1 + float64(z)/16)
				data[dims.Idx(x, y, z)] = float32(v)
			}
		}
	}
	return data, dims
}

// The basic roundtrip: compress under an absolute error bound, decompress,
// verify every value is within tolerance.
func Example() {
	platform := fzmod.NewPlatform()
	data, dims := exampleField()

	blob, err := fzmod.Default().Compress(platform, data, dims, fzmod.Abs(1e-3))
	if err != nil {
		panic(err)
	}
	back, gotDims, err := fzmod.Decompress(platform, blob)
	if err != nil {
		panic(err)
	}
	fmt.Println(gotDims, "first-violation:", fzmod.VerifyBound(data, back, 1e-3))
	// Output: 32x32x16 first-violation: -1
}

// ExampleChunkOpts compresses through the chunked graph explicitly: chunk
// granularity in elements (rounded to whole planes of the slowest
// dimension) and the operation's parallelism budget.
func ExampleChunkOpts() {
	platform := fzmod.NewPlatform()
	data, dims := exampleField()

	blob, err := fzmod.Default().CompressChunked(platform, data, dims, fzmod.Abs(1e-3),
		fzmod.ChunkOpts{ChunkElems: dims.X * dims.Y * 4, Workers: 4})
	if err != nil {
		panic(err)
	}
	back, gotDims, err := fzmod.Decompress(platform, blob)
	if err != nil {
		panic(err)
	}
	fmt.Println(gotDims, "first-violation:", fzmod.VerifyBound(data, back, 1e-3))
	// Output: 32x32x16 first-violation: -1
}

// ExampleStreamOpts runs the out-of-core path: the field streams in from
// an io.Reader slab window by slab window and back out through
// DecompressStream, with resident memory bounded by the window, not the
// field size.
func ExampleStreamOpts() {
	platform := fzmod.NewPlatform()
	data, dims := exampleField()

	raw := new(bytes.Buffer)
	for _, v := range data {
		binary.Write(raw, binary.LittleEndian, v)
	}
	compressed := new(bytes.Buffer)
	_, err := fzmod.Default().CompressStream(platform, raw, dims, fzmod.Abs(1e-3), compressed,
		fzmod.StreamOpts{ChunkElems: dims.X * dims.Y * 4, Window: 2})
	if err != nil {
		panic(err)
	}
	restored := new(bytes.Buffer)
	gotDims, err := fzmod.DecompressStream(platform, compressed, restored, fzmod.StreamOpts{})
	if err != nil {
		panic(err)
	}
	fmt.Println(gotDims, restored.Len() == 4*dims.N())
	// Output: 32x32x16 true
}

// ExampleDecompressOpts caps a full decompression's parallelism budget:
// Workers bounds the chunk-level scheduler width and every kernel launch.
func ExampleDecompressOpts() {
	platform := fzmod.NewPlatform()
	data, dims := exampleField()

	blob, err := fzmod.Default().CompressChunked(platform, data, dims, fzmod.Abs(1e-3),
		fzmod.ChunkOpts{ChunkElems: dims.X * dims.Y * 4})
	if err != nil {
		panic(err)
	}
	back, gotDims, err := fzmod.DecompressWithOpts(platform, blob, fzmod.DecompressOpts{Workers: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(gotDims, "first-violation:", fzmod.VerifyBound(data, back, 1e-3))
	// Output: 32x32x16 first-violation: -1
}

// ExampleDecompressRegion reads one subvolume out of a chunked container
// without decoding the rest: only the slab chunks the selection intersects
// are fetched and decoded.
func ExampleDecompressRegion() {
	platform := fzmod.NewPlatform()
	data, dims := exampleField()

	blob, err := fzmod.Default().CompressChunked(platform, data, dims, fzmod.Abs(1e-3),
		fzmod.ChunkOpts{ChunkElems: dims.X * dims.Y * 4}) // 4 chunks of 4 planes
	if err != nil {
		panic(err)
	}
	sel := fzmod.RegionSel{X0: 8, X1: 24, Y0: 8, Y1: 24, Z0: 5, Z1: 7}
	region, report, err := fzmod.DecompressRegionReport(platform,
		fzmod.NewBytesFetcher(blob), sel, fzmod.RegionOpts{})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(region), "values from", report.Region.Decoded, "of 4 chunks")
	// Output: 512 values from 1 of 4 chunks
}

// ExampleRegionOpts serves repeated reads through a shared slab cache: the
// second read of an already-decoded chunk is a pure cache hit.
func ExampleRegionOpts() {
	platform := fzmod.NewPlatform()
	data, dims := exampleField()

	blob, err := fzmod.Default().CompressChunked(platform, data, dims, fzmod.Abs(1e-3),
		fzmod.ChunkOpts{ChunkElems: dims.X * dims.Y * 4})
	if err != nil {
		panic(err)
	}
	region, err := fzmod.OpenRegion(platform, fzmod.NewBytesFetcher(blob),
		fzmod.RegionOpts{Workers: 2, Cache: fzmod.NewSlabCache(64 << 20)})
	if err != nil {
		panic(err)
	}
	sel := fzmod.RegionSel{X0: 0, X1: 32, Y0: 0, Y1: 32, Z0: 2, Z1: 4}
	if _, err := region.Read(sel); err != nil {
		panic(err)
	}
	_, report, err := region.ReadReport(sel)
	if err != nil {
		panic(err)
	}
	fmt.Println("hits:", report.Region.CacheHits, "decoded:", report.Region.Decoded)
	// Output: hits: 1 decoded: 0
}
