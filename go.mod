module fzmod

go 1.21
